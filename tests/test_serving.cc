// Sharded serving suite (DESIGN.md §15): the multi-threaded ShardedScheduler
// must be invisible to the sessions it serves — a seeded population finishes
// bit-identical to the single-threaded SessionScheduler at ANY shard count,
// with answers arriving from any number of client threads. The durability
// half pins the §14 file contract at the storage layer: an atomic save killed
// at any byte keeps the previous file, an append-mode store file truncated at
// any byte recovers to the longest clean prefix (or a clean Status) and never
// crashes, and a shard halted by a mid-run write failure is recoverable from
// its own file. Run with `ctest -L serving`; CI runs this label under TSan.
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/single_pass.h"
#include "baselines/uh_random.h"
#include "baselines/uh_simplex.h"
#include "baselines/utility_approx.h"
#include "common/budget.h"
#include "common/mutex.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "core/aa.h"
#include "core/ea.h"
#include "core/scheduler.h"
#include "core/snapshot.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "serve/sharding.h"
#include "user/sampler.h"
#include "user/user.h"

namespace isrl {
namespace {

Dataset SmallSkyline(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Dataset raw = GenerateSynthetic(n, d, Distribution::kAntiCorrelated, rng);
  return SkylineOf(raw);
}

rl::DqnOptions FastDqn() {
  rl::DqnOptions o;
  o.hidden_neurons = 32;
  o.batch_size = 16;
  o.min_replay_before_update = 16;
  return o;
}

void ExpectSameResult(const InteractionResult& a, const InteractionResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.best_index, b.best_index) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.converged, b.converged) << label;
  EXPECT_EQ(a.termination, b.termination) << label;
  EXPECT_EQ(a.dropped_answers, b.dropped_answers) << label;
  EXPECT_EQ(a.no_answers, b.no_answers) << label;
  EXPECT_EQ(a.status.ok(), b.status.ok()) << label;
}

// Same six-algorithm roster as the checkpoint suite.
struct Roster {
  Dataset sky;
  Ea ea;
  Aa aa;
  UhRandom uh_random;
  UhSimplex uh_simplex;
  SinglePass single_pass;
  UtilityApprox utility_approx;

  explicit Roster(Dataset dataset)
      : sky(std::move(dataset)),
        ea(sky, EaOpt()),
        aa(sky, AaOpt()),
        uh_random(sky, UhOpt()),
        uh_simplex(sky, UhOpt()),
        single_pass(sky, SpOpt()),
        utility_approx(sky, UaOpt()) {}

  std::vector<InteractiveAlgorithm*> all() {
    return {&ea, &aa, &uh_random, &uh_simplex, &single_pass, &utility_approx};
  }

  static EaOptions EaOpt() {
    EaOptions o;
    o.epsilon = 0.1;
    o.dqn = FastDqn();
    return o;
  }
  static AaOptions AaOpt() {
    AaOptions o;
    o.epsilon = 0.15;
    o.dqn = FastDqn();
    return o;
  }
  static UhOptions UhOpt() {
    UhOptions o;
    o.epsilon = 0.1;
    return o;
  }
  static SinglePassOptions SpOpt() {
    SinglePassOptions o;
    o.epsilon = 0.1;
    return o;
  }
  static UtilityApproxOptions UaOpt() {
    UtilityApproxOptions o;
    o.epsilon = 0.1;
    return o;
  }
};

struct Fleet {
  std::vector<std::unique_ptr<UserOracle>> owned;
  std::vector<UserOracle*> users;
};

Fleet LinearFleet(const std::vector<Vec>& utilities) {
  Fleet fleet;
  for (const Vec& u : utilities) {
    fleet.owned.push_back(std::make_unique<LinearUser>(u));
    fleet.users.push_back(fleet.owned.back().get());
  }
  return fleet;
}

std::vector<Vec> FleetUtilities(size_t count, size_t d, uint64_t seed) {
  Rng urng(seed);
  std::vector<Vec> utilities;
  for (size_t i = 0; i < count; ++i) utilities.push_back(urng.SimplexUniform(d));
  return utilities;
}

/// Thread-safe question channel between the engine's sinks and a pool of
/// client tasks, built on the annotated wrappers (common/mutex.h) so the
/// clang -Wthread-safety lane checks the test's own locking too. The wait
/// loop is written out (no predicate lambda) because the analysis cannot
/// see through closures — see the CondVar contract in common/mutex.h.
struct ClientQueue {
  Mutex mu;
  CondVar cv;
  std::deque<std::pair<size_t, SessionQuestion>> pending ISRL_GUARDED_BY(mu);
  bool closed ISRL_GUARDED_BY(mu) = false;

  void Push(size_t id, const SessionQuestion& question) {
    {
      MutexLock lock(mu);
      pending.emplace_back(id, question);
    }
    cv.NotifyOne();
  }

  void Close() {
    {
      MutexLock lock(mu);
      closed = true;
    }
    cv.NotifyAll();
  }

  /// Blocks for the next question; false once closed and drained.
  bool Pop(std::pair<size_t, SessionQuestion>* item) {
    MutexLock lock(mu);
    while (!closed && pending.empty()) cv.Wait(mu);
    if (pending.empty()) return false;
    *item = std::move(pending.front());
    pending.pop_front();
    return true;
  }
};

/// One independent algorithm stack per shard (CloneForEval copies), so no
/// Q-network scratch is ever shared across worker threads. Clones must
/// outlive the engine AND the Take() calls.
struct ShardStacks {
  std::vector<std::vector<std::unique_ptr<InteractiveAlgorithm>>> stacks;

  ShardStacks(Roster& roster, size_t shards) {
    stacks.resize(shards);
    for (size_t k = 0; k < shards; ++k) {
      for (InteractiveAlgorithm* algo : roster.all()) {
        std::unique_ptr<InteractiveAlgorithm> clone = algo->CloneForEval();
        EXPECT_NE(clone, nullptr) << algo->name();
        stacks[k].push_back(std::move(clone));
      }
    }
  }

  InteractiveAlgorithm* at(size_t shard, size_t algo_index) {
    return stacks[shard][algo_index].get();
  }

  ShardAlgorithmResolver Resolver() {
    return [this](size_t shard, const std::string& name)
               -> InteractiveAlgorithm* {
      for (auto& algo : stacks[shard]) {
        if (algo->name() == name) return algo.get();
      }
      return nullptr;
    };
  }
};

/// The reference: the same seeded population on one single-threaded
/// SessionScheduler, driven sequentially.
std::vector<InteractionResult> SequentialReference(
    Roster& roster, size_t sessions, const RunBudget& budget, uint64_t master,
    const std::vector<Vec>& utilities) {
  SessionScheduler scheduler;
  std::vector<InteractiveAlgorithm*> algos = roster.all();
  for (size_t i = 0; i < sessions; ++i) {
    SessionConfig config;
    config.budget = budget;
    config.seed = SplitSeed(master, i);
    scheduler.Add(algos[i % algos.size()]->StartSession(config));
  }
  Fleet fleet = LinearFleet(utilities);
  return DriveWithUsers(scheduler, fleet.users);
}

void AddShardedPopulation(ShardedScheduler& sharded, ShardStacks& stacks,
                          size_t sessions, size_t num_algos,
                          const RunBudget& budget, uint64_t master) {
  for (size_t i = 0; i < sessions; ++i) {
    SessionConfig config;
    config.budget = budget;
    config.seed = SplitSeed(master, i);
    InteractiveAlgorithm* algo =
        stacks.at(i % sharded.shards(), i % num_algos);
    sharded.Add(algo->StartSession(config), algo);
  }
}

// --------------------------------------------------- atomic file replacement

TEST(AtomicWriteTest, KillingASaveAtAnyByteKeepsThePreviousFile) {
  const std::string path = ::testing::TempDir() + "/isrl_atomic_write.bin";
  const std::string v1 = "previous-good-snapshot-content";
  const std::string v2 = "replacement-candidate-that-is-somewhat-longer";
  ASSERT_TRUE(snapshot::WriteFileBytes(path, v1).ok());

  for (size_t budget = 0; budget < v2.size(); ++budget) {
    snapshot::SetShortWriteForTesting(budget);
    Status died = snapshot::WriteFileBytes(path, v2);
    ASSERT_FALSE(died.ok()) << "budget " << budget;
    EXPECT_EQ(died.code(), StatusCode::kIoError) << "budget " << budget;
    Result<std::string> survivor = snapshot::ReadFileBytes(path);
    ASSERT_TRUE(survivor.ok()) << "budget " << budget;
    EXPECT_EQ(*survivor, v1) << "budget " << budget;
  }

  // The hook is one-shot: the next save goes through untouched.
  ASSERT_TRUE(snapshot::WriteFileBytes(path, v2).ok());
  Result<std::string> replaced = snapshot::ReadFileBytes(path);
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(*replaced, v2);
  std::remove(path.c_str());
}

TEST(AtomicWriteTest, StoreSaveKilledAtAnyByteKeepsThePreviousEpoch) {
  const std::string path = ::testing::TempDir() + "/isrl_atomic_store.bin";
  SessionStore previous;
  previous.BeginEpoch("epoch-1-population");
  previous.LogAnswer(0, Answer::kFirst);
  ASSERT_TRUE(previous.SaveFile(path).ok());

  SessionStore next;
  next.BeginEpoch("epoch-2-population");
  next.LogAnswer(1, Answer::kSecond);
  next.LogCancel(2);
  const size_t save_size = next.Serialize().size();
  for (size_t budget = 0; budget < save_size; ++budget) {
    snapshot::SetShortWriteForTesting(budget);
    ASSERT_FALSE(next.SaveFile(path).ok()) << "budget " << budget;
    Result<SessionStore> loaded = SessionStore::LoadFile(path);
    ASSERT_TRUE(loaded.ok()) << "budget " << budget << ": "
                             << loaded.status().ToString();
    EXPECT_EQ(loaded->population(), "epoch-1-population") << "budget "
                                                          << budget;
    ASSERT_EQ(loaded->wal().size(), 1u) << "budget " << budget;
  }
  ASSERT_TRUE(next.SaveFile(path).ok());
  Result<SessionStore> loaded = SessionStore::LoadFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->population(), "epoch-2-population");
  EXPECT_EQ(loaded->wal().size(), 2u);
  std::remove(path.c_str());
}

TEST(AtomicWriteTest, AppendShortWriteLeavesATornTailNotALostFile) {
  const std::string path = ::testing::TempDir() + "/isrl_append.bin";
  ASSERT_TRUE(snapshot::WriteFileBytes(path, "base").ok());
  snapshot::SetShortWriteForTesting(2);
  Status died = snapshot::AppendFileBytes(path, "extension");
  ASSERT_FALSE(died.ok());
  EXPECT_EQ(died.code(), StatusCode::kIoError);
  Result<std::string> bytes = snapshot::ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, "baseex");  // the torn tail is the reader's problem
  std::remove(path.c_str());
}

// ------------------------------------------------- append-mode session store

TEST(SessionStoreAppendTest, SyncFileAppendsConstantBytesPerRecord) {
  const std::string path = ::testing::TempDir() + "/isrl_sync_incr.bin";
  SessionStore store;
  store.BeginEpoch("population-bytes");
  ASSERT_TRUE(store.SyncFile(path).ok());
  std::vector<size_t> sizes;
  {
    Result<std::string> bytes = snapshot::ReadFileBytes(path);
    ASSERT_TRUE(bytes.ok());
    sizes.push_back(bytes->size());
  }
  for (size_t i = 0; i < 24; ++i) {
    store.LogAnswer(i % 5, Answer::kFirst);
    ASSERT_TRUE(store.SyncFile(path).ok()) << i;
    Result<std::string> bytes = snapshot::ReadFileBytes(path);
    ASSERT_TRUE(bytes.ok());
    sizes.push_back(bytes->size());
  }
  // O(new records) per sync, not O(whole log): every per-record delta costs
  // the same number of bytes, no matter how long the log already is.
  const size_t per_record = sizes[1] - sizes[0];
  for (size_t i = 2; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i] - sizes[i - 1], per_record) << "sync " << i;
  }
  // A sync with nothing new writes nothing.
  ASSERT_TRUE(store.SyncFile(path).ok());
  Result<std::string> unchanged = snapshot::ReadFileBytes(path);
  ASSERT_TRUE(unchanged.ok());
  EXPECT_EQ(unchanged->size(), sizes.back());

  // The multi-frame file reloads to the exact in-memory store.
  Result<SessionStore> loaded = SessionStore::LoadFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->population(), "population-bytes");
  ASSERT_EQ(loaded->wal().size(), store.wal().size());
  for (size_t i = 0; i < store.wal().size(); ++i) {
    EXPECT_EQ(loaded->wal()[i].session_id, store.wal()[i].session_id) << i;
    EXPECT_EQ(loaded->wal()[i].kind, store.wal()[i].kind) << i;
    EXPECT_EQ(loaded->wal()[i].answer, store.wal()[i].answer) << i;
  }
  std::remove(path.c_str());
}

TEST(SessionStoreAppendTest, LegacySaveFileAndSyncFileLoadIdentically) {
  const std::string legacy = ::testing::TempDir() + "/isrl_store_legacy.bin";
  const std::string incremental = ::testing::TempDir() + "/isrl_store_incr.bin";
  SessionStore store;
  store.BeginEpoch("compat-population");
  ASSERT_TRUE(store.SyncFile(incremental).ok());
  store.LogAnswer(3, Answer::kNoAnswer);
  store.LogCancel(1);
  ASSERT_TRUE(store.SyncFile(incremental).ok());
  // Legacy writer: one monolithic frame, same in-memory state.
  ASSERT_TRUE(store.SaveFile(legacy).ok());

  Result<SessionStore> from_legacy = SessionStore::LoadFile(legacy);
  Result<SessionStore> from_incremental = SessionStore::LoadFile(incremental);
  ASSERT_TRUE(from_legacy.ok()) << from_legacy.status().ToString();
  ASSERT_TRUE(from_incremental.ok()) << from_incremental.status().ToString();
  EXPECT_EQ(from_legacy->population(), from_incremental->population());
  ASSERT_EQ(from_legacy->wal().size(), 2u);
  ASSERT_EQ(from_incremental->wal().size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(from_legacy->wal()[i].session_id,
              from_incremental->wal()[i].session_id);
    EXPECT_EQ(from_legacy->wal()[i].kind, from_incremental->wal()[i].kind);
  }
  // Either loaded store serializes back into the legacy single-frame form.
  EXPECT_EQ(from_legacy->Serialize(), from_incremental->Serialize());
  std::remove(legacy.c_str());
  std::remove(incremental.c_str());
}

TEST(SessionStoreAppendTest, TruncationAtEveryByteNeverCrashesLoadFile) {
  const std::string path = ::testing::TempDir() + "/isrl_store_torn.bin";
  const std::string torn = ::testing::TempDir() + "/isrl_store_torn_cut.bin";
  SessionStore store;
  store.BeginEpoch("torn-population");
  ASSERT_TRUE(store.SyncFile(path).ok());
  Result<std::string> epoch_only = snapshot::ReadFileBytes(path);
  ASSERT_TRUE(epoch_only.ok());
  const size_t epoch_size = epoch_only->size();
  for (size_t i = 0; i < 6; ++i) {
    store.LogAnswer(i, i % 2 == 0 ? Answer::kFirst : Answer::kSecond);
    ASSERT_TRUE(store.SyncFile(path).ok());
  }
  Result<std::string> full = snapshot::ReadFileBytes(path);
  ASSERT_TRUE(full.ok());

  size_t last_recovered = 0;
  for (size_t keep = 0; keep <= full->size(); ++keep) {
    ASSERT_TRUE(snapshot::WriteFileBytes(torn, full->substr(0, keep)).ok());
    Result<SessionStore> loaded = SessionStore::LoadFile(torn);
    if (keep < epoch_size) {
      // The epoch frame itself is torn: a clean error, never a crash.
      EXPECT_FALSE(loaded.ok()) << "keep " << keep;
      continue;
    }
    ASSERT_TRUE(loaded.ok()) << "keep " << keep << ": "
                             << loaded.status().ToString();
    EXPECT_EQ(loaded->population(), "torn-population") << "keep " << keep;
    // The recovered WAL is the longest clean prefix — monotone in the
    // number of surviving bytes, and exactly the full log at full size.
    ASSERT_LE(loaded->wal().size(), store.wal().size()) << "keep " << keep;
    EXPECT_GE(loaded->wal().size(), last_recovered) << "keep " << keep;
    last_recovered = loaded->wal().size();
    for (size_t i = 0; i < loaded->wal().size(); ++i) {
      EXPECT_EQ(loaded->wal()[i].session_id, store.wal()[i].session_id);
      EXPECT_EQ(loaded->wal()[i].answer, store.wal()[i].answer);
    }
    // A store loaded from a torn tail must keep appending safely: the next
    // sync rewrites the file whole and the tail damage is gone.
    SessionStore continued = std::move(*loaded);
    continued.LogCancel(99);
    ASSERT_TRUE(continued.SyncFile(torn).ok()) << "keep " << keep;
    Result<SessionStore> again = SessionStore::LoadFile(torn);
    ASSERT_TRUE(again.ok()) << "keep " << keep;
    ASSERT_EQ(again->wal().size(), continued.wal().size()) << "keep " << keep;
    EXPECT_EQ(again->wal().back().kind, WalRecord::kCancel) << "keep " << keep;
  }
  EXPECT_EQ(last_recovered, store.wal().size());
  std::remove(path.c_str());
  std::remove(torn.c_str());
}

// --------------------------------------------- scheduler boundary Try-APIs

TEST(TryApiTest, EveryMisuseComesBackAsAStatusNotACrash) {
  Roster roster(SmallSkyline(150, 3, 201));
  SessionScheduler scheduler;
  SessionConfig config;
  config.budget.max_rounds = 8;
  config.seed = 5;
  scheduler.Add(roster.uh_random.StartSession(config), &roster.uh_random);

  // Unknown ids.
  EXPECT_EQ(scheduler.TryPostAnswer(7, Answer::kFirst).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(scheduler.TryCancel(7).code(), StatusCode::kNotFound);
  EXPECT_EQ(scheduler.TryTake(7).status().code(), StatusCode::kNotFound);

  // Runnable: no outstanding question yet.
  EXPECT_EQ(scheduler.TryPostAnswer(0, Answer::kFirst).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(scheduler.TryTake(0).status().code(),
            StatusCode::kFailedPrecondition);

  // Awaiting: post succeeds once, double-post is an error.
  Rng urng(202);
  LinearUser user(urng.SimplexUniform(3));
  std::vector<PendingQuestion> questions = scheduler.Tick();
  ASSERT_EQ(questions.size(), 1u);
  EXPECT_TRUE(scheduler
                  .TryPostAnswer(0, user.Ask(questions[0].question.first,
                                             questions[0].question.second))
                  .ok());
  EXPECT_EQ(scheduler.TryPostAnswer(0, Answer::kFirst).code(),
            StatusCode::kFailedPrecondition);

  // Drive to completion through the Try surface only.
  while (scheduler.active() > 0) {
    for (const PendingQuestion& pq : scheduler.Tick()) {
      EXPECT_TRUE(scheduler
                      .TryPostAnswer(pq.session_id,
                                     user.Ask(pq.question.first,
                                              pq.question.second))
                      .ok());
    }
  }
  EXPECT_EQ(scheduler.TryPostAnswer(0, Answer::kFirst).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(scheduler.TryCancel(0).ok());  // idempotent on finished
  Result<InteractionResult> taken = scheduler.TryTake(0);
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  EXPECT_EQ(scheduler.TryTake(0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(scheduler.TryPostAnswer(0, Answer::kFirst).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(scheduler.TryCancel(0).ok());  // idempotent on taken
}

TEST(TryApiTest, MismatchedWalSurfacesAsOutOfSyncError) {
  Roster roster(SmallSkyline(150, 3, 211));
  SessionScheduler scheduler;
  SessionConfig config;
  config.budget.max_rounds = 8;
  config.seed = 6;
  scheduler.Add(roster.uh_random.StartSession(config), &roster.uh_random);
  SessionStore store;
  Result<std::string> snapshot = scheduler.CheckpointAll();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  store.BeginEpoch(*snapshot);
  // The snapshot holds one session, but the log answers a seventh: this WAL
  // belongs to a different population. Recovery must say so in a Status —
  // it used to be an ISRL_CHECK abort.
  store.LogAnswer(7, Answer::kFirst);

  AlgorithmResolver resolver =
      [&roster](const std::string& name) -> InteractiveAlgorithm* {
    return name == roster.uh_random.name() ? &roster.uh_random : nullptr;
  };
  Result<SessionScheduler> recovered = RecoverScheduler(store, resolver);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(recovered.status().message().find("unknown session"),
            std::string::npos)
      << recovered.status().ToString();
}

// ------------------------------------------------------- sharded serving

TEST(ShardedServingTest, SeededPopulationIsBitIdenticalAtAnyShardCount) {
  Roster roster(SmallSkyline(200, 3, 221));
  RunBudget budget;
  budget.max_rounds = 12;
  const uint64_t master = 0x5EED;
  const size_t sessions = 12;
  std::vector<Vec> utilities = FleetUtilities(sessions, 3, 222);
  std::vector<InteractionResult> reference =
      SequentialReference(roster, sessions, budget, master, utilities);

  for (size_t shards : {1u, 2u, 4u}) {
    const std::string label = "shards=" + std::to_string(shards);
    ShardStacks stacks(roster, shards);
    ShardedScheduler sharded(ShardedOptions{shards});
    AddShardedPopulation(sharded, stacks, sessions, roster.all().size(),
                         budget, master);
    Fleet fleet = LinearFleet(utilities);
    Result<std::vector<InteractionResult>> results =
        DriveSharded(sharded, fleet.users);
    ASSERT_TRUE(results.ok()) << label << ": " << results.status().ToString();
    ASSERT_EQ(results->size(), reference.size()) << label;
    for (size_t i = 0; i < reference.size(); ++i) {
      ExpectSameResult(reference[i], (*results)[i],
                       label + " session " + std::to_string(i));
    }
  }
}

TEST(ShardedServingTest, ConcurrentClientThreadsReproduceTheReference) {
  Roster roster(SmallSkyline(200, 3, 231));
  RunBudget budget;
  budget.max_rounds = 10;
  const uint64_t master = 0xC11E;
  const size_t sessions = 24;
  std::vector<Vec> utilities = FleetUtilities(sessions, 3, 232);
  std::vector<InteractionResult> reference =
      SequentialReference(roster, sessions, budget, master, utilities);

  const size_t shards = 3;
  ShardStacks stacks(roster, shards);
  ShardedScheduler sharded(ShardedOptions{shards});
  AddShardedPopulation(sharded, stacks, sessions, roster.all().size(), budget,
                       master);
  Fleet fleet = LinearFleet(utilities);

  // The sink hands questions to a client pool: four external threads answer
  // them through the thread-safe boundary, emulating independent front-end
  // handlers (and giving TSan real cross-thread traffic). Dedicated-worker
  // ParallelFor (threads == tasks) is the sanctioned thread spawner: task 0
  // — the calling thread — waits for the population to drain and closes the
  // queue; tasks 1..4 are the clients.
  ClientQueue queue;
  sharded.Start([&](size_t id, const SessionQuestion& question) {
    queue.Push(id, question);
  });
  const size_t clients = 4;
  Status drained;  // written by task 0 only, read after the join below
  ParallelFor(clients + 1, clients + 1, [&](size_t task) {
    if (task == 0) {
      drained = sharded.WaitUntilDrained();
      queue.Close();
      return;
    }
    std::pair<size_t, SessionQuestion> item;
    while (queue.Pop(&item)) {
      const Answer answer = fleet.users[item.first]->Ask(item.second.first,
                                                         item.second.second);
      Status posted = sharded.TryPostAnswer(item.first, answer);
      EXPECT_TRUE(posted.ok()) << posted.ToString();
    }
  });
  sharded.Stop();
  ASSERT_TRUE(drained.ok()) << drained.ToString();

  for (size_t i = 0; i < sessions; ++i) {
    Result<InteractionResult> result = sharded.TryTake(i);
    ASSERT_TRUE(result.ok()) << i << ": " << result.status().ToString();
    ExpectSameResult(reference[i], *result, "session " + std::to_string(i));
  }
}

// Contention stress for the Status boundary (DESIGN.md §16): eight clients
// hammer TryPostAnswer/TryCancel/TryTake against four shards, each client
// interleaving its legitimate answers with seeded hostile traffic —
// out-of-range posts and cancels, and racing takes of random sessions that
// may legitimately succeed mid-run. Whatever the interleaving, every misuse
// must come back as a clean Status, and the seeded population must still
// finish bit-identical to the sequential reference. CI runs this under TSan
// (`ctest -L serving`), which is where the cross-thread traffic earns its
// keep.
TEST(ShardedServingTest, ContendedBoundaryHammeringStaysBitIdentical) {
  Roster roster(SmallSkyline(200, 3, 271));
  RunBudget budget;
  budget.max_rounds = 10;
  const uint64_t master = 0x57E55;
  const size_t sessions = 32;
  std::vector<Vec> utilities = FleetUtilities(sessions, 3, 272);
  std::vector<InteractionResult> reference =
      SequentialReference(roster, sessions, budget, master, utilities);

  const size_t shards = 4;
  ShardStacks stacks(roster, shards);
  ShardedScheduler sharded(ShardedOptions{shards});
  AddShardedPopulation(sharded, stacks, sessions, roster.all().size(), budget,
                       master);
  Fleet fleet = LinearFleet(utilities);

  // Results stolen mid-run by racing TryTake calls, merged with the final
  // sweep below. Shared guarded slots rather than per-client storage: any
  // client may take any session, but the engine hands each result out once.
  struct TakenSlots {
    Mutex mu;
    std::vector<std::unique_ptr<InteractionResult>> slots ISRL_GUARDED_BY(mu);
  } taken;
  {
    MutexLock lock(taken.mu);
    taken.slots.resize(sessions);
  }

  ClientQueue queue;
  sharded.Start([&](size_t id, const SessionQuestion& question) {
    queue.Push(id, question);
  });
  const size_t clients = 8;
  Status drained;  // written by task 0 only, read after the join below
  ParallelFor(clients + 1, clients + 1, [&](size_t task) {
    if (task == 0) {
      drained = sharded.WaitUntilDrained();
      queue.Close();
      return;
    }
    Rng rng(SplitSeed(0xC0117EAD, task));
    std::pair<size_t, SessionQuestion> item;
    while (queue.Pop(&item)) {
      // Hostile traffic around the legitimate answer. Out-of-range ids must
      // be NotFound from any thread at any time.
      if (rng.Bernoulli(0.25)) {
        EXPECT_EQ(sharded.TryPostAnswer(sessions + 7, Answer::kFirst).code(),
                  StatusCode::kNotFound);
      }
      if (rng.Bernoulli(0.25)) {
        EXPECT_EQ(sharded.TryCancel(sessions + 7).code(),
                  StatusCode::kNotFound);
      }
      if (rng.Bernoulli(0.5)) {
        // Racing take of a random session: success means it had genuinely
        // finished — keep the result; anything else must be the documented
        // FailedPrecondition (unfinished or already taken), never a crash.
        const size_t victim = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(sessions) - 1));
        Result<InteractionResult> stolen = sharded.TryTake(victim);
        if (stolen.ok()) {
          MutexLock lock(taken.mu);
          EXPECT_EQ(taken.slots[victim], nullptr) << victim;
          taken.slots[victim] =
              std::make_unique<InteractionResult>(std::move(*stolen));
        } else {
          EXPECT_EQ(stolen.status().code(), StatusCode::kFailedPrecondition)
              << stolen.status().ToString();
        }
      }
      const Answer answer = fleet.users[item.first]->Ask(item.second.first,
                                                         item.second.second);
      Status posted = sharded.TryPostAnswer(item.first, answer);
      EXPECT_TRUE(posted.ok()) << posted.ToString();
    }
  });
  sharded.Stop();
  ASSERT_TRUE(drained.ok()) << drained.ToString();

  size_t stolen_count = 0;
  for (size_t i = 0; i < sessions; ++i) {
    std::unique_ptr<InteractionResult> early;
    {
      MutexLock lock(taken.mu);
      early = std::move(taken.slots[i]);
    }
    const std::string label = "session " + std::to_string(i);
    if (early != nullptr) {
      ++stolen_count;
      ExpectSameResult(reference[i], *early, "stolen " + label);
      // The engine hands each result out exactly once: a re-take of a
      // stolen session is a Status even after Stop().
      EXPECT_EQ(sharded.TryTake(i).status().code(),
                StatusCode::kFailedPrecondition)
          << label;
      EXPECT_TRUE(sharded.TryCancel(i).ok()) << label;  // idempotent on taken
      continue;
    }
    Result<InteractionResult> result = sharded.TryTake(i);
    ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();
    ExpectSameResult(reference[i], *result, label);
  }
  // Not asserted (scheduling-dependent), but useful when tuning the test.
  std::printf("contended hammering: %zu/%zu results taken mid-run\n",
              stolen_count, sessions);
}

TEST(ShardedServingTest, BoundaryMisuseIsAlwaysAStatus) {
  Roster roster(SmallSkyline(150, 3, 241));
  RunBudget budget;
  budget.max_rounds = 6;
  ShardStacks stacks(roster, 2);
  ShardedScheduler sharded(ShardedOptions{2});
  AddShardedPopulation(sharded, stacks, 4, roster.all().size(), budget,
                       0xB0B);
  std::vector<Vec> utilities = FleetUtilities(4, 3, 242);
  Fleet fleet = LinearFleet(utilities);

  // Before Start(): valid ids are rejected with "not serving", bad ids with
  // NotFound.
  EXPECT_EQ(sharded.TryPostAnswer(0, Answer::kFirst).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(sharded.TryPostAnswer(99, Answer::kFirst).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(sharded.TryCancel(99).code(), StatusCode::kNotFound);
  EXPECT_EQ(sharded.TryTake(99).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(sharded.TryTake(0).status().code(),
            StatusCode::kFailedPrecondition);

  // While serving: double answers bounce, cancellation finishes the session
  // with its best-so-far. The sink runs on the question's own shard worker,
  // so the queued answer cannot be applied before the sink returns — the
  // duplicate post is deterministically "already queued".
  sharded.Start([&](size_t id, const SessionQuestion& question) {
    if (id == 1) {
      EXPECT_TRUE(sharded.TryCancel(id).ok());
      EXPECT_TRUE(sharded.TryCancel(id).ok());  // queued-cancel is idempotent
      return;
    }
    const Answer answer =
        fleet.users[id]->Ask(question.first, question.second);
    EXPECT_TRUE(sharded.TryPostAnswer(id, answer).ok());
    EXPECT_EQ(sharded.TryPostAnswer(id, answer).code(),
              StatusCode::kFailedPrecondition);
  });
  ASSERT_TRUE(sharded.WaitUntilDrained().ok());
  sharded.Stop();
  for (size_t id = 0; id < 4; ++id) {
    Result<InteractionResult> result = sharded.TryTake(id);
    ASSERT_TRUE(result.ok()) << id << ": " << result.status().ToString();
  }
  EXPECT_EQ(sharded.TryTake(0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(sharded.TryCancel(0).ok());  // idempotent on taken, even stopped
}

TEST(ShardedDurabilityTest, DurableShardedRunRecoversPerShardFromItsFiles) {
  Roster roster(SmallSkyline(200, 3, 251));
  RunBudget budget;
  budget.max_rounds = 8;
  const uint64_t master = 0xD0C5;
  const size_t sessions = 9;
  const size_t shards = 3;
  const std::string prefix = ::testing::TempDir() + "/isrl_shard_pop";
  std::vector<Vec> utilities = FleetUtilities(sessions, 3, 252);
  std::vector<InteractionResult> reference =
      SequentialReference(roster, sessions, budget, master, utilities);

  ShardStacks stacks(roster, shards);
  ShardedOptions options;
  options.shards = shards;
  options.checkpoint_every_ticks = 2;
  ShardedScheduler sharded(options);
  AddShardedPopulation(sharded, stacks, sessions, roster.all().size(), budget,
                       master);
  ASSERT_TRUE(sharded.EnableDurability(prefix).ok());
  Fleet fleet = LinearFleet(utilities);
  Result<std::vector<InteractionResult>> results =
      DriveSharded(sharded, fleet.users);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  for (size_t i = 0; i < sessions; ++i) {
    ExpectSameResult(reference[i], (*results)[i],
                     "durable session " + std::to_string(i));
  }

  // Every shard recovers independently from its own file. Sessions whose
  // final answer sits in the WAL come back runnable (replay posts answers;
  // the finishing tick belongs to serving), so restart serving: the first
  // tick finishes them without asking anything, and every result matches
  // the reference again (Take() was never logged, so the recovered slots
  // still hold them).
  ShardStacks recovery_stacks(roster, shards);
  Result<std::unique_ptr<ShardedScheduler>> recovered =
      ShardedScheduler::Recover(options, prefix, recovery_stacks.Resolver());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->size(), sessions);
  Fleet fresh = LinearFleet(utilities);
  Result<std::vector<InteractionResult>> refinished =
      DriveSharded(**recovered, fresh.users);
  ASSERT_TRUE(refinished.ok()) << refinished.status().ToString();
  for (size_t i = 0; i < sessions; ++i) {
    ExpectSameResult(reference[i], (*refinished)[i],
                     "recovered session " + std::to_string(i));
  }

  // Shard files from mismatched populations are rejected as a unit.
  ShardedOptions wrong = options;
  wrong.shards = 2;
  ShardStacks wrong_stacks(roster, 2);
  Result<std::unique_ptr<ShardedScheduler>> mismatched =
      ShardedScheduler::Recover(wrong, prefix, wrong_stacks.Resolver());
  EXPECT_FALSE(mismatched.ok());

  // Torn shard file: cut shard 0's final file at byte offsets across its
  // whole length. LoadFile+RecoverScheduler must never crash; whenever they
  // succeed, finishing the recovered sessions against fresh (stateless)
  // users reproduces the reference exactly — the shard resumes from its
  // last durable prefix.
  const std::string shard0 = ShardedScheduler::ShardPath(prefix, 0);
  const std::string torn = ::testing::TempDir() + "/isrl_shard_torn.bin";
  Result<std::string> full = snapshot::ReadFileBytes(shard0);
  ASSERT_TRUE(full.ok());
  const std::vector<size_t> shard0_sessions = {0, 3, 6};
  size_t recovered_ok = 0;
  for (size_t keep = 0; keep <= full->size(); keep += 7) {
    ASSERT_TRUE(snapshot::WriteFileBytes(torn, full->substr(0, keep)).ok());
    Result<SessionStore> loaded = SessionStore::LoadFile(torn);
    if (!loaded.ok()) continue;  // clean rejection (epoch frame torn)
    ShardStacks torn_stacks(roster, 1);
    AlgorithmResolver resolver =
        [&torn_stacks](const std::string& name) -> InteractiveAlgorithm* {
      return torn_stacks.Resolver()(0, name);
    };
    Result<SessionScheduler> scheduler = RecoverScheduler(*loaded, resolver);
    ASSERT_TRUE(scheduler.ok()) << "keep " << keep << ": "
                                << scheduler.status().ToString();
    std::vector<Vec> local_utilities;
    for (size_t global : shard0_sessions) {
      local_utilities.push_back(utilities[global]);
    }
    Fleet local = LinearFleet(local_utilities);
    std::vector<InteractionResult> finished =
        DriveWithUsers(*scheduler, local.users);
    ASSERT_EQ(finished.size(), shard0_sessions.size()) << "keep " << keep;
    for (size_t j = 0; j < shard0_sessions.size(); ++j) {
      ExpectSameResult(reference[shard0_sessions[j]], finished[j],
                       "keep " + std::to_string(keep) + " local " +
                           std::to_string(j));
    }
    ++recovered_ok;
  }
  EXPECT_GT(recovered_ok, 0u);

  for (size_t k = 0; k < shards; ++k) {
    std::remove(ShardedScheduler::ShardPath(prefix, k).c_str());
  }
  std::remove(ShardedScheduler::ManifestPath(prefix).c_str());
  std::remove(torn.c_str());
}

TEST(ShardedDurabilityTest, MidRunWriteFailureHaltsTheShardRecoverably) {
  Roster roster(SmallSkyline(200, 3, 261));
  RunBudget budget;
  budget.max_rounds = 8;
  const uint64_t master = 0xFA17;
  const size_t sessions = 6;
  const size_t shards = 2;
  const std::string prefix = ::testing::TempDir() + "/isrl_halt_pop";
  std::vector<Vec> utilities = FleetUtilities(sessions, 3, 262);
  std::vector<InteractionResult> reference =
      SequentialReference(roster, sessions, budget, master, utilities);

  ShardStacks stacks(roster, shards);
  ShardedOptions options;
  options.shards = shards;
  ShardedScheduler sharded(options);
  AddShardedPopulation(sharded, stacks, sessions, roster.all().size(), budget,
                       master);
  ASSERT_TRUE(sharded.EnableDurability(prefix).ok());

  // The first durable append after Start dies mid-write: that shard halts
  // with the IoError instead of applying unlogged answers, and the drive
  // surfaces it.
  snapshot::SetShortWriteForTesting(3);
  Fleet fleet = LinearFleet(utilities);
  Result<std::vector<InteractionResult>> crashed =
      DriveSharded(sharded, fleet.users);
  ASSERT_FALSE(crashed.ok());
  EXPECT_EQ(crashed.status().code(), StatusCode::kIoError);
  EXPECT_FALSE(sharded.error().ok());

  // Both shard files are still loadable (the torn append tail is dropped),
  // and the whole population recovers and finishes against fresh stateless
  // users with reference-identical results.
  ShardStacks recovery_stacks(roster, shards);
  Result<std::unique_ptr<ShardedScheduler>> recovered =
      ShardedScheduler::Recover(options, prefix, recovery_stacks.Resolver());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  Fleet fresh = LinearFleet(utilities);
  Result<std::vector<InteractionResult>> finished =
      DriveSharded(**recovered, fresh.users);
  ASSERT_TRUE(finished.ok()) << finished.status().ToString();
  for (size_t i = 0; i < sessions; ++i) {
    ExpectSameResult(reference[i], (*finished)[i],
                     "halted-recovery session " + std::to_string(i));
  }
  for (size_t k = 0; k < shards; ++k) {
    std::remove(ShardedScheduler::ShardPath(prefix, k).c_str());
  }
  std::remove(ShardedScheduler::ManifestPath(prefix).c_str());
}

}  // namespace
}  // namespace isrl
