// Unit tests for the neural-network substrate: layer math, finite-difference
// gradient checks, optimisers, and serialisation.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/layer.h"
#include "nn/network.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"

namespace isrl::nn {
namespace {

TEST(LinearTest, ForwardMatchesManualComputation) {
  Rng rng(1);
  Linear layer(2, 2, rng);
  layer.weights() = {1.0, 2.0, 3.0, 4.0};  // row-major (out × in)
  layer.biases() = {0.5, -0.5};
  Vec out = layer.Forward(Vec{1.0, 1.0});
  EXPECT_NEAR(out[0], 3.5, 1e-12);   // 1+2+0.5
  EXPECT_NEAR(out[1], 6.5, 1e-12);   // 3+4-0.5
}

TEST(SeluTest, KnownValues) {
  Selu selu(2);
  Vec out = selu.Forward(Vec{1.0, 0.0});
  EXPECT_NEAR(out[0], Selu::kScale, 1e-12);
  EXPECT_NEAR(out[1], 0.0, 1e-12);
  out = selu.Forward(Vec{-1.0, -5.0});
  EXPECT_NEAR(out[0], Selu::kScale * Selu::kAlpha * (std::exp(-1.0) - 1.0),
              1e-12);
  // SELU is bounded below by −scale·alpha.
  EXPECT_GT(out[1], -Selu::kScale * Selu::kAlpha);
}

TEST(ReluTest, ClampsNegative) {
  Relu relu(3);
  Vec out = relu.Forward(Vec{-1.0, 0.0, 2.0});
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 0.0);
  EXPECT_EQ(out[2], 2.0);
}

TEST(TanhTest, Range) {
  Tanh t(1);
  EXPECT_NEAR(t.Forward(Vec{100.0})[0], 1.0, 1e-9);
  EXPECT_NEAR(t.Forward(Vec{0.0})[0], 0.0, 1e-12);
}

// Finite-difference gradient check: the backward pass of a full MLP must
// match numerical gradients of the scalar output w.r.t. every parameter.
class GradientCheck : public ::testing::TestWithParam<Activation> {};

TEST_P(GradientCheck, BackwardMatchesFiniteDifferences) {
  Rng rng(2);
  Network net = Network::Mlp({3, 5, 1}, GetParam(), rng);
  Vec input{0.3, -0.7, 1.1};
  const double target = 0.25;

  // Analytic gradients of L = (pred − target)² (AccumulateMseSample uses
  // dL/dpred = (pred − target), i.e. ½-scaled MSE; mirror that here).
  net.AccumulateMseSample(input, target);
  std::vector<ParamBlock> blocks = net.Params();

  const double h = 1e-6;
  for (ParamBlock& block : blocks) {
    for (size_t i = 0; i < block.values->size(); ++i) {
      double saved = (*block.values)[i];
      (*block.values)[i] = saved + h;
      double up = net.Predict(input);
      (*block.values)[i] = saved - h;
      double down = net.Predict(input);
      (*block.values)[i] = saved;
      double pred = net.Predict(input);
      double numeric = (pred - target) * (up - down) / (2.0 * h);
      EXPECT_NEAR((*block.grads)[i], numeric,
                  1e-4 * std::max(1.0, std::abs(numeric)))
          << "param " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Activations, GradientCheck,
                         ::testing::Values(Activation::kSelu,
                                           Activation::kRelu,
                                           Activation::kTanh));

TEST(NetworkTest, MlpShapes) {
  Rng rng(3);
  Network net = Network::Mlp({4, 64, 1}, Activation::kSelu, rng);
  EXPECT_EQ(net.num_layers(), 3u);  // linear, selu, linear
  Vec out = net.Forward(Vec(4, 0.5));
  EXPECT_EQ(out.dim(), 1u);
  // 4*64 + 64 + 64*1 + 1 parameters.
  EXPECT_EQ(net.NumParameters(), 4u * 64 + 64 + 64 + 1);
}

TEST(NetworkTest, CloneIsDeepAndEqual) {
  Rng rng(4);
  Network net = Network::Mlp({2, 3, 1}, Activation::kSelu, rng);
  Network copy = net.Clone();
  Vec x{0.1, 0.9};
  EXPECT_NEAR(net.Predict(x), copy.Predict(x), 1e-15);
  // Mutating the copy must not affect the original.
  (*copy.Params()[0].values)[0] += 1.0;
  EXPECT_NE(net.Predict(x), copy.Predict(x));
}

TEST(NetworkTest, CopyParamsFromSynchronises) {
  Rng rng(5);
  Network a = Network::Mlp({2, 4, 1}, Activation::kRelu, rng);
  Network b = Network::Mlp({2, 4, 1}, Activation::kRelu, rng);
  Vec x{0.4, -0.2};
  ASSERT_NE(a.Predict(x), b.Predict(x));
  b.CopyParamsFrom(a);
  EXPECT_NEAR(a.Predict(x), b.Predict(x), 1e-15);
}

TEST(SgdTest, ReducesLossOnRegression) {
  Rng rng(6);
  Network net = Network::Mlp({2, 8, 1}, Activation::kTanh, rng);
  Sgd sgd(net.Params(), 0.05);
  // Learn f(x) = x0 − x1 on fixed samples.
  std::vector<Vec> xs;
  std::vector<double> ys;
  for (int i = 0; i < 32; ++i) {
    Vec x{rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
    xs.push_back(x);
    ys.push_back(x[0] - x[1]);
  }
  auto epoch_loss = [&]() {
    double total = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
      double e = net.Predict(xs[i]) - ys[i];
      total += e * e;
    }
    return total / xs.size();
  };
  double before = epoch_loss();
  for (int epoch = 0; epoch < 200; ++epoch) {
    for (size_t i = 0; i < xs.size(); ++i) net.AccumulateMseSample(xs[i], ys[i]);
    sgd.Step(xs.size());
  }
  double after = epoch_loss();
  EXPECT_LT(after, before * 0.2);
  EXPECT_LT(after, 0.05);
}

TEST(AdamTest, ReducesLossFasterThanFewSteps) {
  Rng rng(7);
  Network net = Network::Mlp({1, 8, 1}, Activation::kSelu, rng);
  Adam adam(net.Params(), 0.01);
  auto loss_at = [&](double x, double y) {
    double e = net.Predict(Vec{x}) - y;
    return e * e;
  };
  double before = loss_at(0.5, 2.0);
  for (int i = 0; i < 300; ++i) {
    net.AccumulateMseSample(Vec{0.5}, 2.0);
    adam.Step(1);
  }
  EXPECT_LT(loss_at(0.5, 2.0), std::max(1e-6, before * 0.01));
}

TEST(OptimizerTest, ZeroGradsClears) {
  Rng rng(8);
  Network net = Network::Mlp({2, 3, 1}, Activation::kRelu, rng);
  net.AccumulateMseSample(Vec{1.0, 1.0}, 0.0);
  Sgd sgd(net.Params(), 0.1);
  sgd.ZeroGrads();
  for (ParamBlock& b : net.Params()) {
    for (double g : *b.grads) EXPECT_EQ(g, 0.0);
  }
}

TEST(OptimizerTest, StepAveragesOverBatch) {
  // Two identical samples with batch_size 2 must produce the same update as
  // one sample with batch_size 1.
  Rng rng(9);
  Network a = Network::Mlp({1, 2, 1}, Activation::kRelu, rng);
  Network b = a.Clone();
  Sgd opt_a(a.Params(), 0.1), opt_b(b.Params(), 0.1);
  a.AccumulateMseSample(Vec{1.0}, 0.0);
  opt_a.Step(1);
  b.AccumulateMseSample(Vec{1.0}, 0.0);
  b.AccumulateMseSample(Vec{1.0}, 0.0);
  opt_b.Step(2);
  EXPECT_NEAR(a.Predict(Vec{1.0}), b.Predict(Vec{1.0}), 1e-12);
}

TEST(SerializeTest, RoundTripPreservesPredictions) {
  Rng rng(10);
  Network net = Network::Mlp({3, 7, 1}, Activation::kSelu, rng);
  std::string text = SerializeNetwork(net);
  Result<Network> loaded = DeserializeNetwork(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (int i = 0; i < 10; ++i) {
    Vec x{rng.Uniform(-1, 1), rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
    EXPECT_NEAR(net.Predict(x), loaded->Predict(x), 1e-12);
  }
}

TEST(SerializeTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeNetwork("not a network").ok());
  EXPECT_FALSE(DeserializeNetwork("isrl-network v1\nlayers 1\nblob 2 2\n").ok());
  EXPECT_FALSE(
      DeserializeNetwork("isrl-network v1\nlayers 1\nlinear 2 2\n1 2 3\n").ok());
}

// Corpus of hostile/corrupted inputs (DESIGN.md §14): each one must come
// back as a descriptive InvalidArgument — never a CHECK abort, never an
// over-allocation, never UB. The `expect_in_message` substring pins each
// input to its intended rejection path so a later refactor cannot quietly
// start rejecting (or accepting) them for the wrong reason.
TEST(SerializeTest, NegativeCorpusYieldsDescriptiveStatuses) {
  struct Case {
    const char* label;
    std::string text;
    const char* expect_in_message;
    // Some rejections are platform-dependent in *message* (libstdc++'s
    // num_get refuses "nan"/"inf" at parse time, libc++ parses them and
    // trips the finiteness check); either message is a correct rejection.
    const char* alt_message = nullptr;
  };
  const std::vector<Case> corpus = {
      {"empty input", "", "bad header"},
      {"future version", "isrl-network v2\nlayers 1\nlinear 2 2\n", "header"},
      {"layer count missing", "isrl-network v1\n", "layer count"},
      {"layer count not a number", "isrl-network v1\nlayers many\n",
       "layer count"},
      {"implausible layer count", "isrl-network v1\nlayers 400000000\n",
       "implausible layer count"},
      {"truncated layer header", "isrl-network v1\nlayers 2\nlinear 2 2\n"
       "1 1 1 1\n1 1\n", "truncated header"},
      {"zero dimension", "isrl-network v1\nlayers 1\nlinear 0 4\n",
       "out of range"},
      // A 2^40-element weight allocation must be refused before it happens.
      {"giant dimensions", "isrl-network v1\nlayers 1\nlinear 1048576 1048576\n",
       "out of range"},
      {"unknown layer kind", "isrl-network v1\nlayers 1\nconv 2 2\n",
       "unknown layer kind"},
      {"truncated weights", "isrl-network v1\nlayers 1\nlinear 2 2\n1 2 3\n",
       "truncated weights"},
      {"truncated biases", "isrl-network v1\nlayers 1\nlinear 2 2\n"
       "1 2 3 4\n1\n", "truncated biases"},
      {"NaN weight", "isrl-network v1\nlayers 1\nlinear 2 2\n"
       "1 nan 3 4\n0 0\n", "non-finite weight", "truncated weights"},
      {"infinite bias", "isrl-network v1\nlayers 1\nlinear 2 2\n"
       "1 2 3 4\ninf 0\n", "non-finite bias", "truncated biases"},
      {"weight that is not a number", "isrl-network v1\nlayers 1\nlinear 2 2\n"
       "1 x 3 4\n0 0\n", "truncated weights"},
  };
  for (const Case& c : corpus) {
    Result<Network> net = DeserializeNetwork(c.text);
    ASSERT_FALSE(net.ok()) << c.label;
    EXPECT_EQ(net.status().code(), StatusCode::kInvalidArgument) << c.label;
    const std::string& msg = net.status().message();
    const bool matched =
        msg.find(c.expect_in_message) != std::string::npos ||
        (c.alt_message != nullptr &&
         msg.find(c.alt_message) != std::string::npos);
    EXPECT_TRUE(matched) << c.label << ": got '" << net.status().ToString()
                         << "'";
  }
}

TEST(SerializeTest, FingerprintTracksWeightsAndArchitecture) {
  Rng rng(13);
  Network a = Network::Mlp({3, 7, 1}, Activation::kSelu, rng);
  Network b = a.Clone();
  EXPECT_EQ(NetworkFingerprint(a), NetworkFingerprint(b));

  // One optimiser step must change the identity...
  Sgd sgd(b.Params(), 0.1);
  b.AccumulateMseSample(Vec{0.1, 0.2, 0.3}, 1.0);
  sgd.Step(1);
  EXPECT_NE(NetworkFingerprint(a), NetworkFingerprint(b));

  // ...and the fingerprint survives a serialisation round trip.
  Result<Network> reloaded = DeserializeNetwork(SerializeNetwork(a));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(NetworkFingerprint(a), NetworkFingerprint(*reloaded));
}

TEST(SerializeTest, FileRoundTrip) {
  Rng rng(11);
  Network net = Network::Mlp({2, 4, 1}, Activation::kTanh, rng);
  const std::string path = ::testing::TempDir() + "/isrl_net.txt";
  ASSERT_TRUE(SaveNetwork(net, path).ok());
  Result<Network> loaded = LoadNetwork(path);
  ASSERT_TRUE(loaded.ok());
  Vec x{0.2, -0.4};
  EXPECT_NEAR(net.Predict(x), loaded->Predict(x), 1e-12);
}


TEST(RegressionSampleTest, WeightScalesGradientLinearly) {
  Rng rng(12);
  Network a = Network::Mlp({2, 4, 1}, Activation::kRelu, rng);
  Network b = a.Clone();
  Vec x{0.4, -0.3};
  a.AccumulateRegressionSample(x, 1.0, /*weight=*/1.0, /*huber_delta=*/0.0);
  b.AccumulateRegressionSample(x, 1.0, /*weight=*/0.5, /*huber_delta=*/0.0);
  std::vector<ParamBlock> ga = a.Params(), gb = b.Params();
  for (size_t blk = 0; blk < ga.size(); ++blk) {
    for (size_t i = 0; i < ga[blk].grads->size(); ++i) {
      EXPECT_NEAR((*gb[blk].grads)[i], 0.5 * (*ga[blk].grads)[i], 1e-12);
    }
  }
}

TEST(RegressionSampleTest, HuberClipsLargeErrors) {
  Rng rng(13);
  Network a = Network::Mlp({1, 3, 1}, Activation::kTanh, rng);
  Network b = a.Clone();
  // A wildly wrong target: the squared-error gradient is huge; Huber's is
  // clipped at delta, so the Huber-updated accumulation must be the
  // squared-error accumulation rescaled by delta/|err|.
  Vec x{0.7};
  double err_a = a.AccumulateRegressionSample(x, 100.0, 1.0, 0.0);
  double err_b = b.AccumulateRegressionSample(x, 100.0, 1.0, 2.0);
  EXPECT_NEAR(err_a, err_b, 1e-12);  // raw error identical
  double scale = 2.0 / std::abs(err_a);
  std::vector<ParamBlock> ga = a.Params(), gb = b.Params();
  for (size_t blk = 0; blk < ga.size(); ++blk) {
    for (size_t i = 0; i < ga[blk].grads->size(); ++i) {
      EXPECT_NEAR((*gb[blk].grads)[i], scale * (*ga[blk].grads)[i], 1e-9);
    }
  }
}

// ---------- Batched execution (DESIGN.md §12) ----------

Matrix RandomBatch(size_t rows, size_t dim, Rng& rng) {
  Matrix m(rows, dim);
  for (double& v : m.data()) v = rng.Uniform(-1.0, 1.0);
  return m;
}

class BatchedEquivalence : public ::testing::TestWithParam<Activation> {};

TEST_P(BatchedEquivalence, PredictBatchMatchesScalarExactly) {
  Rng rng(31);
  Network net = Network::Mlp({5, 9, 1}, GetParam(), rng);
  Matrix batch = RandomBatch(7, 5, rng);
  Vec preds = net.PredictBatch(batch);
  ASSERT_EQ(preds.dim(), 7u);
  for (size_t r = 0; r < batch.rows(); ++r) {
    // Exact equality: the batched kernel keeps the scalar summation order.
    EXPECT_EQ(preds[r], net.Predict(batch.RowVec(r)));
    EXPECT_EQ(preds[r], net.Infer(batch.RowVec(r)));
  }
}

TEST_P(BatchedEquivalence, BatchForwardMatchesScalarOnWideHead) {
  Rng rng(32);
  Network net = Network::Mlp({4, 6, 3}, GetParam(), rng);
  Matrix batch = RandomBatch(5, 4, rng);
  Matrix out = net.BatchForward(batch);
  ASSERT_EQ(out.rows(), 5u);
  ASSERT_EQ(out.cols(), 3u);
  for (size_t r = 0; r < batch.rows(); ++r) {
    Vec scalar = net.Forward(batch.RowVec(r));
    for (size_t c = 0; c < out.cols(); ++c) EXPECT_EQ(out(r, c), scalar[c]);
  }
}

TEST_P(BatchedEquivalence, BatchBackwardAccumulatesScalarGradients) {
  Rng rng(33);
  Network scalar_net = Network::Mlp({4, 8, 1}, GetParam(), rng);
  Network batched_net = scalar_net.Clone();
  Matrix batch = RandomBatch(6, 4, rng);
  Vec out_grads(6);
  for (size_t r = 0; r < 6; ++r) out_grads[r] = rng.Uniform(-2.0, 2.0);

  for (size_t r = 0; r < 6; ++r) {
    scalar_net.Forward(batch.RowVec(r));
    scalar_net.Backward(Vec{out_grads[r]});
  }
  Matrix grads(6, 1);
  for (size_t r = 0; r < 6; ++r) grads(r, 0) = out_grads[r];
  batched_net.BatchForward(batch);
  batched_net.BatchBackward(grads);

  std::vector<ParamBlock> gs = scalar_net.Params();
  std::vector<ParamBlock> gb = batched_net.Params();
  ASSERT_EQ(gs.size(), gb.size());
  for (size_t blk = 0; blk < gs.size(); ++blk) {
    for (size_t i = 0; i < gs[blk].grads->size(); ++i) {
      // Exact equality: BatchBackward accumulates in sample-row order, the
      // same order as the sequential scalar Backward calls.
      EXPECT_EQ((*gb[blk].grads)[i], (*gs[blk].grads)[i]);
    }
  }
}

TEST_P(BatchedEquivalence, RegressionBatchMatchesSampleLoopThroughAdamStep) {
  Rng rng(34);
  Network scalar_net = Network::Mlp({3, 7, 1}, GetParam(), rng);
  Network batched_net = scalar_net.Clone();
  Adam scalar_opt(scalar_net.Params(), 0.01);
  Adam batched_opt(batched_net.Params(), 0.01);

  Matrix inputs = RandomBatch(5, 3, rng);
  Vec targets(5), weights(5);
  for (size_t r = 0; r < 5; ++r) {
    targets[r] = rng.Uniform(-1.0, 1.0);
    weights[r] = rng.Uniform(0.1, 2.0);
  }
  const double huber_delta = 0.5;

  Vec scalar_errs(5);
  for (size_t r = 0; r < 5; ++r) {
    scalar_errs[r] = scalar_net.AccumulateRegressionSample(
        inputs.RowVec(r), targets[r], weights[r], huber_delta);
  }
  Vec batched_errs =
      batched_net.AccumulateRegressionBatch(inputs, targets, weights,
                                            huber_delta);
  ASSERT_EQ(batched_errs.dim(), 5u);
  for (size_t r = 0; r < 5; ++r) EXPECT_EQ(batched_errs[r], scalar_errs[r]);

  scalar_opt.Step(5);
  batched_opt.Step(5);
  std::vector<ParamBlock> ps = scalar_net.Params();
  std::vector<ParamBlock> pb = batched_net.Params();
  for (size_t blk = 0; blk < ps.size(); ++blk) {
    for (size_t i = 0; i < ps[blk].values->size(); ++i) {
      EXPECT_EQ((*pb[blk].values)[i], (*ps[blk].values)[i]);
    }
  }
  // After the step both nets must still predict identically.
  Vec probe{0.2, -0.4, 0.9};
  EXPECT_EQ(batched_net.Predict(probe), scalar_net.Predict(probe));
}

TEST_P(BatchedEquivalence, EmptyWeightsMeanUnitWeights) {
  Rng rng(35);
  Network a = Network::Mlp({2, 5, 1}, GetParam(), rng);
  Network b = a.Clone();
  Matrix inputs = RandomBatch(4, 2, rng);
  Vec targets{0.1, -0.2, 0.3, -0.4};
  Vec unit(4, 1.0);
  Vec ea = a.AccumulateRegressionBatch(inputs, targets, Vec(), 0.0);
  Vec eb = b.AccumulateRegressionBatch(inputs, targets, unit, 0.0);
  for (size_t r = 0; r < 4; ++r) EXPECT_EQ(ea[r], eb[r]);
  std::vector<ParamBlock> ga = a.Params(), gb = b.Params();
  for (size_t blk = 0; blk < ga.size(); ++blk) {
    for (size_t i = 0; i < ga[blk].grads->size(); ++i) {
      EXPECT_EQ((*ga[blk].grads)[i], (*gb[blk].grads)[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Activations, BatchedEquivalence,
                         ::testing::Values(Activation::kSelu, Activation::kRelu,
                                           Activation::kTanh));

TEST(InferenceModeTest, InferDoesNotDisturbTrainingCache) {
  Rng rng(36);
  Network with_infer = Network::Mlp({3, 6, 1}, Activation::kSelu, rng);
  Network without = with_infer.Clone();
  Vec train_x{0.4, -0.1, 0.8};
  Vec other{0.9, 0.9, -0.9};

  with_infer.Forward(train_x);
  // Inference between Forward and Backward (e.g. target-network scoring in
  // the middle of a DQN update) must leave the cached activations intact.
  (void)with_infer.Infer(other);
  (void)with_infer.PredictBatch(Matrix::FromRows({other, train_x}));
  with_infer.Backward(Vec{1.0});

  without.Forward(train_x);
  without.Backward(Vec{1.0});

  std::vector<ParamBlock> ga = with_infer.Params(), gb = without.Params();
  for (size_t blk = 0; blk < ga.size(); ++blk) {
    for (size_t i = 0; i < ga[blk].grads->size(); ++i) {
      EXPECT_EQ((*ga[blk].grads)[i], (*gb[blk].grads)[i]);
    }
  }
}

TEST(RegressionSampleTest, HuberMatchesMseInsideDelta) {
  Rng rng(14);
  Network a = Network::Mlp({1, 3, 1}, Activation::kSelu, rng);
  Network b = a.Clone();
  // Target chosen so |err| < delta: gradients must be identical.
  Vec x{0.2};
  double pred = a.Predict(x);
  double target = pred - 0.1;
  a.AccumulateRegressionSample(x, target, 1.0, 0.0);
  b.AccumulateRegressionSample(x, target, 1.0, 5.0);
  std::vector<ParamBlock> ga = a.Params(), gb = b.Params();
  for (size_t blk = 0; blk < ga.size(); ++blk) {
    for (size_t i = 0; i < ga[blk].grads->size(); ++i) {
      EXPECT_NEAR((*gb[blk].grads)[i], (*ga[blk].grads)[i], 1e-12);
    }
  }
}

}  // namespace
}  // namespace isrl::nn
