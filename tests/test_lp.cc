// Unit + property tests for the two-phase simplex solver.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/simplex.h"

namespace isrl::lp {
namespace {

TEST(SimplexTest, SimpleMaximize) {
  // max 3x + 2y, x + y ≤ 4, x ≤ 2, x,y ≥ 0 → x=2, y=2, obj=10.
  Model m;
  m.AddVariable(3.0);
  m.AddVariable(2.0);
  m.AddConstraint(Vec{1.0, 1.0}, Relation::kLe, 4.0);
  m.AddConstraint(Vec{1.0, 0.0}, Relation::kLe, 2.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_NEAR(r.objective, 10.0, 1e-9);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.x[1], 2.0, 1e-9);
}

TEST(SimplexTest, SimpleMinimize) {
  // min x + y, x + 2y ≥ 4, 3x + y ≥ 6 → intersection (1.6, 1.2), obj 2.8.
  Model m;
  m.AddVariable(1.0);
  m.AddVariable(1.0);
  m.SetSense(Sense::kMinimize);
  m.AddConstraint(Vec{1.0, 2.0}, Relation::kGe, 4.0);
  m.AddConstraint(Vec{3.0, 1.0}, Relation::kGe, 6.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_NEAR(r.objective, 2.8, 1e-9);
  EXPECT_NEAR(r.x[0], 1.6, 1e-9);
  EXPECT_NEAR(r.x[1], 1.2, 1e-9);
}

TEST(SimplexTest, EqualityConstraint) {
  // max x, x + y = 1, x,y ≥ 0 → x=1.
  Model m;
  m.AddVariable(1.0);
  m.AddVariable(0.0);
  m.AddConstraint(Vec{1.0, 1.0}, Relation::kEq, 1.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x ≥ 3 and x ≤ 1 cannot hold.
  Model m;
  m.AddVariable(1.0);
  m.AddConstraint(Vec{1.0}, Relation::kGe, 3.0);
  m.AddConstraint(Vec{1.0}, Relation::kLe, 1.0);
  SolveResult r = Solve(m);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  Model m;
  m.AddVariable(1.0);
  m.AddConstraint(Vec{1.0}, Relation::kGe, 0.0);
  SolveResult r = Solve(m);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kUnbounded);
}

TEST(SimplexTest, NegativeRhsNormalised) {
  // max -x s.t. -x ≤ -2 (i.e. x ≥ 2) → x = 2, obj = -2.
  Model m;
  m.AddVariable(-1.0);
  m.AddConstraint(Vec{-1.0}, Relation::kLe, -2.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, -2.0, 1e-9);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
}

TEST(SimplexTest, FreeVariableCanGoNegative) {
  // min x (x free), x ≥ -5 → x = -5.
  Model m;
  m.AddVariable(1.0, /*nonneg=*/false);
  m.SetSense(Sense::kMinimize);
  m.AddConstraint(Vec{1.0}, Relation::kGe, -5.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, -5.0, 1e-9);
  EXPECT_NEAR(r.x[0], -5.0, 1e-9);
}

TEST(SimplexTest, FreeVariableMaximized) {
  // max x (x free), x ≤ 0.25 → x = 0.25 (positive part of the split unused).
  Model m;
  m.AddVariable(1.0, /*nonneg=*/false);
  m.AddConstraint(Vec{1.0}, Relation::kLe, 0.25);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 0.25, 1e-9);
}

TEST(SimplexTest, ChebyshevCentreOfSquare) {
  // Largest ball in the unit square: centre (.5,.5), radius .5.
  // Variables: cx, cy, r. Constraints: cx ± r, cy ± r within [0,1].
  Model m;
  m.AddVariable(0.0);
  m.AddVariable(0.0);
  m.AddVariable(1.0);
  m.AddConstraint(Vec{1.0, 0.0, -1.0}, Relation::kGe, 0.0);   // cx − r ≥ 0
  m.AddConstraint(Vec{1.0, 0.0, 1.0}, Relation::kLe, 1.0);    // cx + r ≤ 1
  m.AddConstraint(Vec{0.0, 1.0, -1.0}, Relation::kGe, 0.0);
  m.AddConstraint(Vec{0.0, 1.0, 1.0}, Relation::kLe, 1.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 0.5, 1e-9);
  EXPECT_NEAR(r.x[0], 0.5, 1e-9);
  EXPECT_NEAR(r.x[1], 0.5, 1e-9);
}

TEST(SimplexTest, DegenerateVertexStillOptimal) {
  // Three constraints through one vertex (degenerate) — classic cycling bait.
  Model m;
  m.AddVariable(1.0);
  m.AddVariable(1.0);
  m.AddConstraint(Vec{1.0, 0.0}, Relation::kLe, 1.0);
  m.AddConstraint(Vec{0.0, 1.0}, Relation::kLe, 1.0);
  m.AddConstraint(Vec{1.0, 1.0}, Relation::kLe, 2.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
}

TEST(SimplexTest, RedundantEqualityRows) {
  // The same equality twice: phase 1 must neutralise the redundant row.
  Model m;
  m.AddVariable(1.0);
  m.AddVariable(0.0);
  m.AddConstraint(Vec{1.0, 1.0}, Relation::kEq, 1.0);
  m.AddConstraint(Vec{2.0, 2.0}, Relation::kEq, 2.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

TEST(SimplexTest, NoVariablesRejected) {
  Model m;
  SolveResult r = Solve(m);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
}

TEST(SimplexTest, ZeroObjectiveFeasibilityProbe) {
  // Pure feasibility use (objective 0): should return OK with obj 0.
  Model m;
  m.AddVariable(0.0);
  m.AddConstraint(Vec{1.0}, Relation::kGe, 0.5);
  m.AddConstraint(Vec{1.0}, Relation::kLe, 0.7);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 0.0, 1e-12);
  EXPECT_GE(r.x[0], 0.5 - 1e-9);
  EXPECT_LE(r.x[0], 0.7 + 1e-9);
}

// ---------- Property tests ----------

// Over the simplex {u ≥ 0, Σu = 1}, max c·u must equal max_i c[i]: the
// optimum of a linear function over a simplex sits at a corner.
class SimplexCornerProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(SimplexCornerProperty, LinearObjectiveOverSimplexHitsCorner) {
  const size_t d = GetParam();
  Rng rng(100 + d);
  for (int trial = 0; trial < 10; ++trial) {
    Model m;
    Vec c(d);
    for (size_t i = 0; i < d; ++i) {
      c[i] = rng.Uniform(-1.0, 1.0);
      m.AddVariable(c[i]);
    }
    m.AddConstraint(Vec(d, 1.0), Relation::kEq, 1.0);
    SolveResult r = Solve(m);
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(r.objective, c.Max(), 1e-9);
    EXPECT_NEAR(r.x.Sum(), 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SimplexCornerProperty,
                         ::testing::Values(2, 3, 5, 8, 12, 20));

// Random feasible boxes: solution must satisfy every constraint and be at
// least as good as any random feasible point (optimality spot-check).
class SimplexRandomProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(SimplexRandomProperty, OptimumBeatsRandomFeasiblePoints) {
  const size_t d = GetParam();
  Rng rng(200 + d);
  for (int trial = 0; trial < 5; ++trial) {
    Model m;
    Vec c(d);
    for (size_t i = 0; i < d; ++i) {
      c[i] = rng.Uniform(-1.0, 1.0);
      m.AddVariable(c[i]);
    }
    // Box 0 ≤ x_i ≤ b_i plus a random ≤ halfspace through the box.
    Vec ub(d);
    for (size_t i = 0; i < d; ++i) {
      ub[i] = rng.Uniform(0.5, 2.0);
      Vec row(d);
      row[i] = 1.0;
      m.AddConstraint(row, Relation::kLe, ub[i]);
    }
    Vec a(d);
    for (size_t i = 0; i < d; ++i) a[i] = rng.Uniform(0.0, 1.0);
    double rhs = Dot(a, ub) * 0.6;
    m.AddConstraint(a, Relation::kLe, rhs);

    SolveResult r = Solve(m);
    ASSERT_TRUE(r.ok());
    // Feasibility of the reported optimum.
    for (size_t i = 0; i < d; ++i) {
      EXPECT_GE(r.x[i], -1e-9);
      EXPECT_LE(r.x[i], ub[i] + 1e-9);
    }
    EXPECT_LE(Dot(a, r.x), rhs + 1e-8);
    // Optimality vs random feasible points (rejection-sampled).
    for (int probe = 0; probe < 200; ++probe) {
      Vec p(d);
      for (size_t i = 0; i < d; ++i) p[i] = rng.Uniform(0.0, ub[i]);
      if (Dot(a, p) > rhs) continue;
      EXPECT_LE(Dot(c, p), r.objective + 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SimplexRandomProperty,
                         ::testing::Values(2, 3, 5, 10));

// ---------- Warm starts and LP families (DESIGN.md §17) ----------

// AA-shaped member: optimise one coordinate over the utility simplex cut by
// learned ≥ half-spaces. All members over the same `normals` share constraint
// structure and differ only in objective — exactly an lp::FamilySolver
// family (the 2d rectangle-extent LPs of core/aa_state.cc).
Model RectangleExtentModel(const std::vector<Vec>& normals, size_t d,
                           size_t coord, bool maximize) {
  Model m;
  for (size_t i = 0; i < d; ++i) m.AddVariable(i == coord ? 1.0 : 0.0);
  m.SetSense(maximize ? Sense::kMaximize : Sense::kMinimize);
  m.AddConstraint(Vec(d, 1.0), Relation::kEq, 1.0);
  for (const Vec& n : normals) m.AddConstraint(n, Relation::kGe, 0.0);
  return m;
}

// Random cut normals oriented to keep one interior point feasible, so the
// family is non-trivially constrained but never empty.
std::vector<Vec> FeasibleNormals(Rng* rng, size_t d, size_t count) {
  Vec p = rng->SimplexUniform(d);
  std::vector<Vec> normals;
  for (size_t k = 0; k < count; ++k) {
    Vec n(d);
    for (size_t c = 0; c < d; ++c) n[c] = rng->Uniform(-1.0, 1.0);
    if (Dot(n, p) < 0.0) {
      for (size_t c = 0; c < d; ++c) n[c] = -n[c];
    }
    normals.push_back(n);
  }
  return normals;
}

TEST(WarmStartTest, ResolvingSameModelStartsWarm) {
  Rng rng(301);
  std::vector<Vec> normals = FeasibleNormals(&rng, 5, 4);
  Model m = RectangleExtentModel(normals, 5, 0, /*maximize=*/true);
  SolveResult cold = SolveWithRecovery(m);
  ASSERT_TRUE(cold.ok()) << cold.status.ToString();
  ASSERT_FALSE(cold.warm.empty());

  SolveResult warm = SolveWithWarmStart(m, cold.warm);
  ASSERT_TRUE(warm.ok()) << warm.status.ToString();
  EXPECT_TRUE(warm.diagnostics.warm_started);
  EXPECT_FALSE(warm.diagnostics.warm_rejected);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-12);
  // Re-solving from the optimal basis skips phase 1 and re-proves
  // optimality in a single pricing pass.
  EXPECT_LT(warm.diagnostics.iterations, cold.diagnostics.iterations);
}

TEST(WarmStartTest, PatchedModelStaysCorrect) {
  // The convex-hull sweep reuse pattern: same shape, a few patched entries.
  Rng rng(302);
  std::vector<Vec> normals = FeasibleNormals(&rng, 4, 3);
  Model m = RectangleExtentModel(normals, 4, 1, /*maximize=*/false);
  SolveResult first = SolveWithRecovery(m);
  ASSERT_TRUE(first.ok());

  Model patched = m;
  patched.SetConstraintRhs(1, -0.05);  // relax one learned cut
  SolveResult warm = SolveWithWarmStart(patched, first.warm);
  SolveResult cold = SolveWithRecovery(patched);
  ASSERT_EQ(warm.ok(), cold.ok());
  ASSERT_TRUE(warm.ok());
  // Whether or not the warm basis survived the patch, the optimum must
  // agree with the cold solve of the patched model.
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
}

TEST(WarmStartTest, CorruptBasisDegradesToColdBitIdentical) {
  Rng rng(303);
  std::vector<Vec> normals = FeasibleNormals(&rng, 5, 4);
  Model m = RectangleExtentModel(normals, 5, 2, /*maximize=*/true);
  SolveResult cold = SolveWithRecovery(m);
  ASSERT_TRUE(cold.ok());

  WarmStart duplicate = cold.warm;
  ASSERT_GE(duplicate.basis.size(), 2u);
  duplicate.basis[0] = duplicate.basis[1];
  WarmStart out_of_range = cold.warm;
  out_of_range.basis[0] = cold.warm.num_cols + 17;
  WarmStart artificial = cold.warm;
  artificial.basis[0] = cold.warm.first_artificial;  // artificials banned
  WarmStart stale = cold.warm;
  stale.num_rows += 1;  // shape fingerprint from some other model

  for (const WarmStart& bad : {duplicate, out_of_range, artificial, stale}) {
    SolveResult r = SolveWithWarmStart(m, bad);
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_FALSE(r.diagnostics.warm_started);
    EXPECT_TRUE(r.diagnostics.warm_rejected);
    // The fallback is the cold retry ladder itself, so the degraded result
    // is bit-identical to a cold solve, not merely close.
    EXPECT_EQ(r.objective, cold.objective);
    ASSERT_EQ(r.x.dim(), cold.x.dim());
    for (size_t c = 0; c < r.x.dim(); ++c) EXPECT_EQ(r.x[c], cold.x[c]);
  }
}

TEST(WarmStartTest, EmptyWarmStartIsPlainRecovery) {
  Rng rng(304);
  std::vector<Vec> normals = FeasibleNormals(&rng, 3, 2);
  Model m = RectangleExtentModel(normals, 3, 0, /*maximize=*/false);
  SolveResult r = SolveWithWarmStart(m, WarmStart{});
  SolveResult cold = SolveWithRecovery(m);
  ASSERT_EQ(r.ok(), cold.ok());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.diagnostics.warm_started);
  EXPECT_FALSE(r.diagnostics.warm_rejected);
  EXPECT_EQ(r.objective, cold.objective);
  for (size_t c = 0; c < r.x.dim(); ++c) EXPECT_EQ(r.x[c], cold.x[c]);
}

class FamilySolverProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(FamilySolverProperty, BitIdenticalToColdRecoveryPerMember) {
  const size_t d = GetParam();
  Rng rng(400 + d);
  std::vector<Vec> normals = FeasibleNormals(&rng, d, 5);
  FamilySolver family;
  for (size_t coord = 0; coord < d; ++coord) {
    for (bool maximize : {false, true}) {
      Model m = RectangleExtentModel(normals, d, coord, maximize);
      SolveResult shared = family.Solve(m);
      SolveResult cold = SolveWithRecovery(m);
      ASSERT_EQ(shared.status.code(), cold.status.code());
      ASSERT_TRUE(shared.ok()) << shared.status.ToString();
      // The contract is pivot-for-pivot identity with the member's own cold
      // solve: same iteration count, bitwise-equal optimum.
      EXPECT_EQ(shared.diagnostics.iterations, cold.diagnostics.iterations);
      EXPECT_EQ(shared.objective, cold.objective);
      ASSERT_EQ(shared.x.dim(), cold.x.dim());
      for (size_t c = 0; c < d; ++c) EXPECT_EQ(shared.x[c], cold.x[c]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, FamilySolverProperty,
                         ::testing::Values(2, 3, 5, 10, 15));

TEST(FamilySolverTest, NonMemberSolvedColdButCorrect) {
  Rng rng(401);
  std::vector<Vec> normals = FeasibleNormals(&rng, 4, 3);
  FamilySolver family;
  Model a = RectangleExtentModel(normals, 4, 0, /*maximize=*/true);
  SolveResult ra = family.Solve(a);
  ASSERT_TRUE(ra.ok());

  // Different constraint structure: falls back to a cold recovery solve.
  Model b = RectangleExtentModel(normals, 4, 1, /*maximize=*/false);
  b.SetConstraintRhs(1, -0.25);
  SolveResult rb = family.Solve(b);
  SolveResult cold = SolveWithRecovery(b);
  ASSERT_EQ(rb.status.code(), cold.status.code());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(rb.objective, cold.objective);
  for (size_t c = 0; c < rb.x.dim(); ++c) EXPECT_EQ(rb.x[c], cold.x[c]);
}

TEST(FamilySolverTest, InfeasibleFamilySharedAcrossMembers) {
  // Σu = 1 with u₀ ≥ 2 is empty; every member must report kInfeasible,
  // exactly as its own cold solve does.
  FamilySolver family;
  for (size_t coord = 0; coord < 3; ++coord) {
    // Same structure, member-specific objective.
    Model member;
    for (size_t i = 0; i < 3; ++i) member.AddVariable(i == coord ? 1.0 : 0.0);
    member.SetSense(Sense::kMinimize);
    member.AddConstraint(Vec(3, 1.0), Relation::kEq, 1.0);
    member.AddConstraint(Vec{1.0, 0.0, 0.0}, Relation::kGe, 2.0);
    SolveResult shared = family.Solve(member);
    SolveResult cold = SolveWithRecovery(member);
    EXPECT_EQ(shared.status.code(), StatusCode::kInfeasible);
    EXPECT_EQ(shared.status.code(), cold.status.code());
    EXPECT_EQ(shared.diagnostics.iterations, cold.diagnostics.iterations);
  }
}

}  // namespace
}  // namespace isrl::lp
