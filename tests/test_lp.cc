// Unit + property tests for the two-phase simplex solver.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/simplex.h"

namespace isrl::lp {
namespace {

TEST(SimplexTest, SimpleMaximize) {
  // max 3x + 2y, x + y ≤ 4, x ≤ 2, x,y ≥ 0 → x=2, y=2, obj=10.
  Model m;
  m.AddVariable(3.0);
  m.AddVariable(2.0);
  m.AddConstraint(Vec{1.0, 1.0}, Relation::kLe, 4.0);
  m.AddConstraint(Vec{1.0, 0.0}, Relation::kLe, 2.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_NEAR(r.objective, 10.0, 1e-9);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.x[1], 2.0, 1e-9);
}

TEST(SimplexTest, SimpleMinimize) {
  // min x + y, x + 2y ≥ 4, 3x + y ≥ 6 → intersection (1.6, 1.2), obj 2.8.
  Model m;
  m.AddVariable(1.0);
  m.AddVariable(1.0);
  m.SetSense(Sense::kMinimize);
  m.AddConstraint(Vec{1.0, 2.0}, Relation::kGe, 4.0);
  m.AddConstraint(Vec{3.0, 1.0}, Relation::kGe, 6.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_NEAR(r.objective, 2.8, 1e-9);
  EXPECT_NEAR(r.x[0], 1.6, 1e-9);
  EXPECT_NEAR(r.x[1], 1.2, 1e-9);
}

TEST(SimplexTest, EqualityConstraint) {
  // max x, x + y = 1, x,y ≥ 0 → x=1.
  Model m;
  m.AddVariable(1.0);
  m.AddVariable(0.0);
  m.AddConstraint(Vec{1.0, 1.0}, Relation::kEq, 1.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x ≥ 3 and x ≤ 1 cannot hold.
  Model m;
  m.AddVariable(1.0);
  m.AddConstraint(Vec{1.0}, Relation::kGe, 3.0);
  m.AddConstraint(Vec{1.0}, Relation::kLe, 1.0);
  SolveResult r = Solve(m);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  Model m;
  m.AddVariable(1.0);
  m.AddConstraint(Vec{1.0}, Relation::kGe, 0.0);
  SolveResult r = Solve(m);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kUnbounded);
}

TEST(SimplexTest, NegativeRhsNormalised) {
  // max -x s.t. -x ≤ -2 (i.e. x ≥ 2) → x = 2, obj = -2.
  Model m;
  m.AddVariable(-1.0);
  m.AddConstraint(Vec{-1.0}, Relation::kLe, -2.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, -2.0, 1e-9);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
}

TEST(SimplexTest, FreeVariableCanGoNegative) {
  // min x (x free), x ≥ -5 → x = -5.
  Model m;
  m.AddVariable(1.0, /*nonneg=*/false);
  m.SetSense(Sense::kMinimize);
  m.AddConstraint(Vec{1.0}, Relation::kGe, -5.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, -5.0, 1e-9);
  EXPECT_NEAR(r.x[0], -5.0, 1e-9);
}

TEST(SimplexTest, FreeVariableMaximized) {
  // max x (x free), x ≤ 0.25 → x = 0.25 (positive part of the split unused).
  Model m;
  m.AddVariable(1.0, /*nonneg=*/false);
  m.AddConstraint(Vec{1.0}, Relation::kLe, 0.25);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 0.25, 1e-9);
}

TEST(SimplexTest, ChebyshevCentreOfSquare) {
  // Largest ball in the unit square: centre (.5,.5), radius .5.
  // Variables: cx, cy, r. Constraints: cx ± r, cy ± r within [0,1].
  Model m;
  m.AddVariable(0.0);
  m.AddVariable(0.0);
  m.AddVariable(1.0);
  m.AddConstraint(Vec{1.0, 0.0, -1.0}, Relation::kGe, 0.0);   // cx − r ≥ 0
  m.AddConstraint(Vec{1.0, 0.0, 1.0}, Relation::kLe, 1.0);    // cx + r ≤ 1
  m.AddConstraint(Vec{0.0, 1.0, -1.0}, Relation::kGe, 0.0);
  m.AddConstraint(Vec{0.0, 1.0, 1.0}, Relation::kLe, 1.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 0.5, 1e-9);
  EXPECT_NEAR(r.x[0], 0.5, 1e-9);
  EXPECT_NEAR(r.x[1], 0.5, 1e-9);
}

TEST(SimplexTest, DegenerateVertexStillOptimal) {
  // Three constraints through one vertex (degenerate) — classic cycling bait.
  Model m;
  m.AddVariable(1.0);
  m.AddVariable(1.0);
  m.AddConstraint(Vec{1.0, 0.0}, Relation::kLe, 1.0);
  m.AddConstraint(Vec{0.0, 1.0}, Relation::kLe, 1.0);
  m.AddConstraint(Vec{1.0, 1.0}, Relation::kLe, 2.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
}

TEST(SimplexTest, RedundantEqualityRows) {
  // The same equality twice: phase 1 must neutralise the redundant row.
  Model m;
  m.AddVariable(1.0);
  m.AddVariable(0.0);
  m.AddConstraint(Vec{1.0, 1.0}, Relation::kEq, 1.0);
  m.AddConstraint(Vec{2.0, 2.0}, Relation::kEq, 2.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

TEST(SimplexTest, NoVariablesRejected) {
  Model m;
  SolveResult r = Solve(m);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
}

TEST(SimplexTest, ZeroObjectiveFeasibilityProbe) {
  // Pure feasibility use (objective 0): should return OK with obj 0.
  Model m;
  m.AddVariable(0.0);
  m.AddConstraint(Vec{1.0}, Relation::kGe, 0.5);
  m.AddConstraint(Vec{1.0}, Relation::kLe, 0.7);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 0.0, 1e-12);
  EXPECT_GE(r.x[0], 0.5 - 1e-9);
  EXPECT_LE(r.x[0], 0.7 + 1e-9);
}

// ---------- Property tests ----------

// Over the simplex {u ≥ 0, Σu = 1}, max c·u must equal max_i c[i]: the
// optimum of a linear function over a simplex sits at a corner.
class SimplexCornerProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(SimplexCornerProperty, LinearObjectiveOverSimplexHitsCorner) {
  const size_t d = GetParam();
  Rng rng(100 + d);
  for (int trial = 0; trial < 10; ++trial) {
    Model m;
    Vec c(d);
    for (size_t i = 0; i < d; ++i) {
      c[i] = rng.Uniform(-1.0, 1.0);
      m.AddVariable(c[i]);
    }
    m.AddConstraint(Vec(d, 1.0), Relation::kEq, 1.0);
    SolveResult r = Solve(m);
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(r.objective, c.Max(), 1e-9);
    EXPECT_NEAR(r.x.Sum(), 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SimplexCornerProperty,
                         ::testing::Values(2, 3, 5, 8, 12, 20));

// Random feasible boxes: solution must satisfy every constraint and be at
// least as good as any random feasible point (optimality spot-check).
class SimplexRandomProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(SimplexRandomProperty, OptimumBeatsRandomFeasiblePoints) {
  const size_t d = GetParam();
  Rng rng(200 + d);
  for (int trial = 0; trial < 5; ++trial) {
    Model m;
    Vec c(d);
    for (size_t i = 0; i < d; ++i) {
      c[i] = rng.Uniform(-1.0, 1.0);
      m.AddVariable(c[i]);
    }
    // Box 0 ≤ x_i ≤ b_i plus a random ≤ halfspace through the box.
    Vec ub(d);
    for (size_t i = 0; i < d; ++i) {
      ub[i] = rng.Uniform(0.5, 2.0);
      Vec row(d);
      row[i] = 1.0;
      m.AddConstraint(row, Relation::kLe, ub[i]);
    }
    Vec a(d);
    for (size_t i = 0; i < d; ++i) a[i] = rng.Uniform(0.0, 1.0);
    double rhs = Dot(a, ub) * 0.6;
    m.AddConstraint(a, Relation::kLe, rhs);

    SolveResult r = Solve(m);
    ASSERT_TRUE(r.ok());
    // Feasibility of the reported optimum.
    for (size_t i = 0; i < d; ++i) {
      EXPECT_GE(r.x[i], -1e-9);
      EXPECT_LE(r.x[i], ub[i] + 1e-9);
    }
    EXPECT_LE(Dot(a, r.x), rhs + 1e-8);
    // Optimality vs random feasible points (rejection-sampled).
    for (int probe = 0; probe < 200; ++probe) {
      Vec p(d);
      for (size_t i = 0; i < d; ++i) p[i] = rng.Uniform(0.0, ub[i]);
      if (Dot(a, p) > rhs) continue;
      EXPECT_LE(Dot(c, p), r.objective + 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, SimplexRandomProperty,
                         ::testing::Values(2, 3, 5, 10));

}  // namespace
}  // namespace isrl::lp
