// Unit tests for the data substrate: dataset container, normalisation,
// synthetic generators, skyline, CSV I/O, and the real-like builders.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/real_like.h"
#include "data/skyline.h"
#include "data/synthetic.h"

namespace isrl {
namespace {

// ---------- Dataset ----------

TEST(DatasetTest, AddAndAccess) {
  Dataset d(2);
  d.Add(Vec{0.1, 0.9});
  d.Add(Vec{0.5, 0.5});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.dim(), 2u);
  EXPECT_TRUE(ApproxEqual(d.point(1), Vec{0.5, 0.5}));
}

TEST(DatasetTest, FromVectorInfersDim) {
  Dataset d({Vec{1.0, 2.0, 3.0}, Vec{4.0, 5.0, 6.0}});
  EXPECT_EQ(d.dim(), 3u);
  EXPECT_EQ(d.size(), 2u);
}

TEST(DatasetDeathTest, DimensionMismatchAborts) {
  Dataset d(2);
  d.Add(Vec{0.1, 0.9});
  EXPECT_DEATH(d.Add(Vec{0.1}), "ISRL_CHECK");
}

TEST(DatasetTest, TopIndexMatchesBruteForce) {
  Rng rng(1);
  Dataset d(3);
  for (int i = 0; i < 50; ++i) {
    d.Add(Vec{rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (int trial = 0; trial < 10; ++trial) {
    Vec u = rng.SimplexUniform(3);
    size_t top = d.TopIndex(u);
    for (size_t i = 0; i < d.size(); ++i) {
      EXPECT_GE(Dot(u, d.point(top)), Dot(u, d.point(i)) - 1e-12);
    }
    EXPECT_NEAR(d.TopUtility(u), Dot(u, d.point(top)), 1e-12);
  }
}

TEST(DatasetTest, NormalizedMapsToUnitRange) {
  Dataset d(2);
  d.Add(Vec{10.0, 300.0});
  d.Add(Vec{20.0, 100.0});
  d.Add(Vec{15.0, 200.0});
  Dataset n = d.Normalized();
  for (size_t i = 0; i < n.size(); ++i) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_GT(n.point(i)[c], 0.0);
      EXPECT_LE(n.point(i)[c], 1.0);
    }
  }
  // Max value maps to 1, min to the floor.
  EXPECT_NEAR(n.point(1)[0], 1.0, 1e-12);
  EXPECT_NEAR(n.point(0)[0], 1e-3, 1e-12);
}

TEST(DatasetTest, NormalizedInvertsSmallerIsBetter) {
  Dataset d(2);
  d.Add(Vec{100.0, 1.0});  // cheap       → should become large in dim 0
  d.Add(Vec{900.0, 2.0});  // expensive   → small in dim 0
  Dataset n = d.Normalized({false, true});
  EXPECT_GT(n.point(0)[0], n.point(1)[0]);
  EXPECT_LT(n.point(0)[1], n.point(1)[1]);
}

TEST(DatasetTest, NormalizedPreservesRankingWithinAttribute) {
  Rng rng(2);
  Dataset d(1);
  for (int i = 0; i < 30; ++i) d.Add(Vec{rng.Uniform(-5, 5)});
  Dataset n = d.Normalized();
  for (size_t a = 0; a < d.size(); ++a) {
    for (size_t b = 0; b < d.size(); ++b) {
      if (d.point(a)[0] < d.point(b)[0]) {
        EXPECT_LE(n.point(a)[0], n.point(b)[0]);
      }
    }
  }
}

TEST(DatasetTest, AttributeNames) {
  Dataset d(2);
  d.Add(Vec{1.0, 2.0});
  d.set_attribute_names({"price", "mpg"});
  EXPECT_EQ(d.attribute_names()[1], "mpg");
  Dataset n = d.Normalized();
  EXPECT_EQ(n.attribute_names()[0], "price");
}

// ---------- Dominance / skyline ----------

TEST(SkylineTest, DominatesSemantics) {
  EXPECT_TRUE(Dominates(Vec{0.5, 0.5}, Vec{0.5, 0.4}));
  EXPECT_TRUE(Dominates(Vec{0.6, 0.5}, Vec{0.5, 0.4}));
  EXPECT_FALSE(Dominates(Vec{0.5, 0.5}, Vec{0.5, 0.5}));  // equal: no
  EXPECT_FALSE(Dominates(Vec{0.9, 0.1}, Vec{0.1, 0.9}));  // incomparable
  EXPECT_FALSE(Dominates(Vec{0.4, 0.6}, Vec{0.5, 0.5}));
}

TEST(SkylineTest, HandPickedExample) {
  // Table III of the paper: p1..p5; p4 is dominated by p3 (0.5,0.8) vs
  // (0.7,0.4)? No — incomparable. Actual dominated point: none except p4 by
  // p3? Check: (0.7,0.4) vs others — p3=(0.5,0.8) no, p5=(1,0) no. All five
  // are skyline except p2=(0.3,0.7) dominated by p3=(0.5,0.8).
  Dataset d(2);
  d.Add(Vec{0.0, 1.0});
  d.Add(Vec{0.3, 0.7});
  d.Add(Vec{0.5, 0.8});
  d.Add(Vec{0.7, 0.4});
  d.Add(Vec{1.0, 0.0});
  auto sky = SkylineIndices(d);
  EXPECT_EQ(sky, (std::vector<size_t>{0, 2, 3, 4}));
}

TEST(SkylineTest, MatchesBruteForce) {
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    size_t dim = 2 + static_cast<size_t>(rng.UniformInt(0, 3));
    Dataset d(dim);
    for (int i = 0; i < 120; ++i) {
      Vec p(dim);
      for (size_t c = 0; c < dim; ++c) p[c] = rng.Uniform(0.0, 1.0);
      d.Add(p);
    }
    std::set<size_t> fast;
    for (size_t i : SkylineIndices(d)) fast.insert(i);
    for (size_t i = 0; i < d.size(); ++i) {
      bool dominated = false;
      for (size_t j = 0; j < d.size(); ++j) {
        if (Dominates(d.point(j), d.point(i))) {
          dominated = true;
          break;
        }
      }
      EXPECT_EQ(fast.count(i) > 0, !dominated) << "point " << i;
    }
  }
}

TEST(SkylineTest, SkylinePointsAreTopForSomeUtility) {
  // The reason the paper preprocesses to the skyline: every skyline point of
  // a 2-d dataset can win for some utility vector, every dominated point
  // cannot win for any.
  Rng rng(4);
  Dataset d = GenerateSynthetic(200, 2, Distribution::kAntiCorrelated, rng);
  Dataset sky = SkylineOf(d);
  for (int trial = 0; trial < 50; ++trial) {
    Vec u = rng.SimplexUniform(2);
    EXPECT_NEAR(d.TopUtility(u), sky.TopUtility(u), 1e-12);
  }
}

// ---------- Synthetic generators ----------

class SyntheticProperty
    : public ::testing::TestWithParam<std::tuple<Distribution, size_t>> {};

TEST_P(SyntheticProperty, PointsInDomainAndDeterministic) {
  auto [dist, d] = GetParam();
  Rng rng(5);
  Dataset data = GenerateSynthetic(300, d, dist, rng);
  EXPECT_EQ(data.size(), 300u);
  EXPECT_EQ(data.dim(), d);
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t c = 0; c < d; ++c) {
      EXPECT_GT(data.point(i)[c], 0.0);
      EXPECT_LE(data.point(i)[c], 1.0);
    }
  }
  Rng rng2(5);
  Dataset again = GenerateSynthetic(300, d, dist, rng2);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(ApproxEqual(data.point(i), again.point(i), 0.0));
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, SyntheticProperty,
    ::testing::Combine(::testing::Values(Distribution::kIndependent,
                                         Distribution::kCorrelated,
                                         Distribution::kAntiCorrelated),
                       ::testing::Values(2, 4, 8, 20)));

TEST(SyntheticTest, AntiCorrelatedHasRichestSkyline) {
  // The defining property of the anti-correlated family.
  Rng rng(6);
  Dataset anti = GenerateSynthetic(2000, 3, Distribution::kAntiCorrelated, rng);
  Dataset corr = GenerateSynthetic(2000, 3, Distribution::kCorrelated, rng);
  Dataset ind = GenerateSynthetic(2000, 3, Distribution::kIndependent, rng);
  size_t s_anti = SkylineIndices(anti).size();
  size_t s_corr = SkylineIndices(corr).size();
  size_t s_ind = SkylineIndices(ind).size();
  EXPECT_GT(s_anti, s_ind);
  EXPECT_GT(s_ind, s_corr);
}

TEST(SyntheticTest, AntiCorrelatedNegativeCorrelation) {
  Rng rng(7);
  Dataset d = GenerateSynthetic(5000, 2, Distribution::kAntiCorrelated, rng);
  double mean0 = 0, mean1 = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    mean0 += d.point(i)[0];
    mean1 += d.point(i)[1];
  }
  mean0 /= d.size();
  mean1 /= d.size();
  double cov = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    cov += (d.point(i)[0] - mean0) * (d.point(i)[1] - mean1);
  }
  EXPECT_LT(cov / d.size(), 0.0);
}

TEST(SyntheticTest, CorrelatedPositiveCorrelation) {
  Rng rng(8);
  Dataset d = GenerateSynthetic(5000, 2, Distribution::kCorrelated, rng);
  double mean0 = 0, mean1 = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    mean0 += d.point(i)[0];
    mean1 += d.point(i)[1];
  }
  mean0 /= d.size();
  mean1 /= d.size();
  double cov = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    cov += (d.point(i)[0] - mean0) * (d.point(i)[1] - mean1);
  }
  EXPECT_GT(cov / d.size(), 0.0);
}

// ---------- CSV ----------

TEST(CsvTest, RoundTrip) {
  Dataset d(3);
  d.set_attribute_names({"a", "b", "c"});
  Rng rng(9);
  for (int i = 0; i < 25; ++i) {
    d.Add(Vec{rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  const std::string path = ::testing::TempDir() + "/isrl_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(d, path).ok());
  Result<Dataset> loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), d.size());
  EXPECT_EQ(loaded->attribute_names(), d.attribute_names());
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_TRUE(ApproxEqual(loaded->point(i), d.point(i), 1e-12));
  }
}

TEST(CsvTest, HeaderlessFile) {
  const std::string path = ::testing::TempDir() + "/isrl_nohdr.csv";
  {
    std::ofstream out(path);
    out << "1,2\n3,4\n";
  }
  Result<Dataset> loaded = ReadCsv(path, /*has_header=*/false);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->dim(), 2u);
}

TEST(CsvTest, RejectsRaggedRows) {
  const std::string path = ::testing::TempDir() + "/isrl_ragged.csv";
  {
    std::ofstream out(path);
    out << "a,b\n1,2\n3\n";
  }
  EXPECT_FALSE(ReadCsv(path).ok());
}

TEST(CsvTest, RejectsNonNumeric) {
  const std::string path = ::testing::TempDir() + "/isrl_nan.csv";
  {
    std::ofstream out(path);
    out << "a,b\n1,hello\n";
  }
  EXPECT_FALSE(ReadCsv(path).ok());
}

TEST(CsvTest, MissingFileIsIoError) {
  Result<Dataset> r = ReadCsv("/nonexistent/definitely_missing.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

// ---------- Real-like datasets ----------

TEST(RealLikeTest, CarShapeAndDomain) {
  Rng rng(10);
  Dataset car = MakeCarDataset(rng, 2000);
  EXPECT_EQ(car.size(), 2000u);
  EXPECT_EQ(car.dim(), 3u);
  EXPECT_EQ(car.attribute_names()[0], "price");
  for (size_t i = 0; i < car.size(); ++i) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_GT(car.point(i)[c], 0.0);
      EXPECT_LE(car.point(i)[c], 1.0);
    }
  }
}

TEST(RealLikeTest, CarPriceMileageAntiCorrelatedAfterInversion) {
  // After higher-is-better inversion, "cheap" and "low mileage" fight: old
  // cars are cheap (good) with high mileage (bad) — negative correlation
  // between the two normalised columns keeps the skyline rich.
  Rng rng(11);
  Dataset car = MakeCarDataset(rng, 4000);
  double m0 = 0, m1 = 0;
  for (size_t i = 0; i < car.size(); ++i) {
    m0 += car.point(i)[0];
    m1 += car.point(i)[1];
  }
  m0 /= car.size();
  m1 /= car.size();
  double cov = 0;
  for (size_t i = 0; i < car.size(); ++i) {
    cov += (car.point(i)[0] - m0) * (car.point(i)[1] - m1);
  }
  EXPECT_LT(cov / car.size(), 0.0);
  EXPECT_GT(SkylineIndices(car).size(), 10u);
}

TEST(RealLikeTest, PlayerShapeAndSkyline) {
  Rng rng(12);
  Dataset player = MakePlayerDataset(rng, 3000);
  EXPECT_EQ(player.size(), 3000u);
  EXPECT_EQ(player.dim(), kPlayerAttributes);
  for (size_t i = 0; i < player.size(); ++i) {
    for (size_t c = 0; c < player.dim(); ++c) {
      EXPECT_GT(player.point(i)[c], 0.0);
      EXPECT_LE(player.point(i)[c], 1.0);
    }
  }
  // 20-d data: a large fraction of points is Pareto-optimal, like real NBA
  // box-score data.
  EXPECT_GT(SkylineIndices(player).size(), player.size() / 4);
}

TEST(RealLikeTest, DefaultSizesMatchPaper) {
  EXPECT_EQ(kCarRows, 10668u);
  EXPECT_EQ(kPlayerRows, 17386u);
  EXPECT_EQ(kPlayerAttributes, 20u);
}


TEST(DatasetTest, NormalizedConstantAttributeMapsToOne) {
  Dataset d(2);
  d.Add(Vec{5.0, 1.0});
  d.Add(Vec{5.0, 2.0});
  Dataset n = d.Normalized();
  EXPECT_NEAR(n.point(0)[0], 1.0, 1e-12);
  EXPECT_NEAR(n.point(1)[0], 1.0, 1e-12);
}

TEST(DatasetTest, NormalizedFloorIsRespected) {
  Dataset d(1);
  d.Add(Vec{0.0});
  d.Add(Vec{10.0});
  Dataset n = d.Normalized({}, /*floor=*/0.25);
  EXPECT_NEAR(n.point(0)[0], 0.25, 1e-12);
  EXPECT_NEAR(n.point(1)[0], 1.0, 1e-12);
}

TEST(SkylineTest, DuplicatePointsOneSurvives) {
  // Equal points do not dominate each other: both stay on the skyline.
  Dataset d(2);
  d.Add(Vec{0.5, 0.5});
  d.Add(Vec{0.5, 0.5});
  d.Add(Vec{0.4, 0.4});  // dominated by both
  auto sky = SkylineIndices(d);
  EXPECT_EQ(sky, (std::vector<size_t>{0, 1}));
}

TEST(SkylineTest, SinglePointDataset) {
  Dataset d(3);
  d.Add(Vec{0.2, 0.3, 0.5});
  EXPECT_EQ(SkylineIndices(d).size(), 1u);
}

}  // namespace
}  // namespace isrl
