// MUST NOT COMPILE: returning while still holding a lock that the function
// has no annotation to keep. Catches early-return paths that leak a held
// mutex — the failure mode MutexLock (scoped capability) exists to prevent.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

void ReturnsHoldingTheLock(isrl::Mutex& mu) {
  mu.Lock();
  // violation: no Unlock and no ISRL_ACQUIRE annotation on this function,
  // so mu is still held when it returns
}

}  // namespace

int main() {
  isrl::Mutex mu;
  ReturnsHoldingTheLock(mu);
  return 0;
}
