// MUST NOT COMPILE: reading an ISRL_GUARDED_BY field without its lock.
// This is the workhorse rule — every cross-thread field in serve/ and
// common/ carries a GUARDED_BY, and an unlocked read is exactly the data
// race the sharded boundary exists to prevent.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

struct Counter {
  isrl::Mutex mu;
  int value ISRL_GUARDED_BY(mu) = 0;
};

int UnlockedRead(Counter& counter) {
  return counter.value;  // violation: mu not held
}

}  // namespace

int main() {
  Counter counter;
  return UnlockedRead(counter);
}
