// MUST NOT COMPILE: releasing a capability that is not held. The classic
// double-unlock / unlock-on-the-wrong-branch bug, caught statically.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

void UnlockWithoutLock(isrl::Mutex& mu) {
  mu.Unlock();  // violation: mu is not held on entry
}

}  // namespace

int main() {
  isrl::Mutex mu;
  UnlockWithoutLock(mu);
  return 0;
}
