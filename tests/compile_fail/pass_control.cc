// MUST COMPILE CLEAN: the inverted control for the negative-compile
// harness. Exercises every wrapper the violation cases abuse — Mutex,
// MutexLock, CondVar, GUARDED_BY, REQUIRES, ACQUIRED_BEFORE — with correct
// lock discipline. If this case ever fails, the harness flags or include
// paths are broken, and the "expected failures" next door are failing for
// the wrong reason.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

struct Channel {
  isrl::Mutex exec_mu ISRL_ACQUIRED_BEFORE(mu);
  int applied ISRL_GUARDED_BY(exec_mu) = 0;

  isrl::Mutex mu;
  isrl::CondVar cv;
  int queued ISRL_GUARDED_BY(mu) = 0;
  bool stopped ISRL_GUARDED_BY(mu) = false;

  void ApplyLocked() ISRL_REQUIRES(exec_mu) { ++applied; }
};

int Drain(Channel& channel) {
  {
    isrl::MutexLock lock(channel.mu);
    channel.queued = 3;
    channel.stopped = true;
    channel.cv.NotifyAll();
  }
  {
    isrl::MutexLock lock(channel.mu);
    while (!channel.stopped && channel.queued == 0) {
      channel.cv.Wait(channel.mu);
    }
  }
  // Hierarchy order: exec_mu before mu.
  isrl::MutexLock exec(channel.exec_mu);
  channel.ApplyLocked();
  isrl::MutexLock lock(channel.mu);
  return channel.applied + channel.queued;
}

}  // namespace

int main() {
  Channel channel;
  return Drain(channel) == 4 ? 0 : 1;
}
