// MUST NOT COMPILE: calling an ISRL_REQUIRES function without holding the
// lock it demands. Mirrors the real helpers that assume a held capability,
// e.g. ShardedScheduler::SyncMirror (serve/sharding.h).
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

struct Queue {
  isrl::Mutex mu;
  int depth ISRL_GUARDED_BY(mu) = 0;

  void PushLocked() ISRL_REQUIRES(mu) { ++depth; }
};

void Misuse(Queue& queue) {
  queue.PushLocked();  // violation: caller does not hold queue.mu
}

}  // namespace

int main() {
  Queue queue;
  Misuse(queue);
  return 0;
}
