# Negative-compile driver (see README.md). Invoked by ctest as
#   cmake -DCOMPILER=<clang++> -DSOURCE=<case.cc> -DINCLUDE_DIR=<src>
#         -DEXPECT=FAIL|PASS -P check_case.cmake
#
# EXPECT=FAIL passes only when the compile fails AND the diagnostic comes
# from the -Wthread-safety family — a case dying of a syntax error would
# otherwise rot into a vacuous "pass".
if(NOT COMPILER OR NOT SOURCE OR NOT INCLUDE_DIR OR NOT EXPECT)
  message(FATAL_ERROR "usage: cmake -DCOMPILER=... -DSOURCE=... "
                      "-DINCLUDE_DIR=... -DEXPECT=FAIL|PASS -P check_case.cmake")
endif()

execute_process(
  COMMAND ${COMPILER} -std=c++20 -fsyntax-only
          -Wthread-safety -Wthread-safety-beta
          -Werror=thread-safety -Werror=thread-safety-beta
          -I${INCLUDE_DIR} ${SOURCE}
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(EXPECT STREQUAL "PASS")
  if(NOT exit_code EQUAL 0)
    message(FATAL_ERROR
            "control case ${SOURCE} must compile clean but failed:\n${err}")
  endif()
elseif(EXPECT STREQUAL "FAIL")
  if(exit_code EQUAL 0)
    message(FATAL_ERROR
            "${SOURCE} compiled clean — the deliberate thread-safety "
            "violation was NOT caught; the annotations have lost their teeth")
  endif()
  if(NOT err MATCHES "thread-safety")
    message(FATAL_ERROR
            "${SOURCE} failed to compile, but not with a -Wthread-safety "
            "diagnostic — the case is broken, not the violation "
            "detected:\n${err}")
  endif()
else()
  message(FATAL_ERROR "EXPECT must be FAIL or PASS, got '${EXPECT}'")
endif()
