// MUST NOT COMPILE (under -Wthread-safety-beta): acquiring two mutexes
// against their declared ISRL_ACQUIRED_BEFORE order. Mirrors the real
// hierarchy in serve/sharding.h — Shard::exec_mu before Shard::mu — whose
// inversion would deadlock TryTake against a worker's Halt path.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

struct TwoLocks {
  isrl::Mutex exec_mu ISRL_ACQUIRED_BEFORE(mu);
  isrl::Mutex mu;
};

void InvertedOrder(TwoLocks& locks) {
  isrl::MutexLock second(locks.mu);
  isrl::MutexLock first(locks.exec_mu);  // violation: mu is already held
}

}  // namespace

int main() {
  TwoLocks locks;
  InvertedOrder(locks);
  return 0;
}
