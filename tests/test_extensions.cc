// Tests for the opt-in extensions: flag parsing, prioritized replay,
// Double-DQN / Huber-loss agent variants, agent persistence, and the
// question-budget mode motivated by the paper's introduction (surveys should
// stay around 10 questions).
#include <cstdio>

#include <gtest/gtest.h>

#include "common/flags.h"
#include "core/aa.h"
#include "core/ea.h"
#include "core/regret.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "rl/dqn.h"
#include "rl/prioritized_replay.h"
#include "user/sampler.h"
#include "user/user.h"

namespace isrl {
namespace {

// ---------- Flags ----------

TEST(FlagsTest, ParsesAllForms) {
  const char* argv[] = {"prog", "--eps=0.2", "--train=50", "--verbose",
                        "input.csv"};
  Flags flags = Flags::Parse(5, argv);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.0), 0.2);
  EXPECT_EQ(flags.GetInt("train", 0), 50);
  EXPECT_TRUE(flags.GetBool("verbose"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags = Flags::Parse(1, argv);
  EXPECT_EQ(flags.GetString("algo", "ea"), "ea");
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.1), 0.1);
  EXPECT_FALSE(flags.Has("eps"));
}

TEST(FlagsTest, MalformedDoubleFallsBack) {
  const char* argv[] = {"prog", "--eps=abc"};
  Flags flags = Flags::Parse(2, argv);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps", 0.3), 0.3);
}

TEST(FlagsTest, RequireKnownCatchesTypos) {
  const char* argv[] = {"prog", "--epz=0.2"};
  Flags flags = Flags::Parse(2, argv);
  EXPECT_TRUE(flags.RequireKnown({"eps"}).code() ==
              StatusCode::kInvalidArgument);
  EXPECT_TRUE(flags.RequireKnown({"epz"}).ok());
}

// ---------- Prioritized replay ----------

rl::Transition MakeTransition(double feature, double reward) {
  rl::Transition t;
  t.state_action = Vec{feature};
  t.reward = reward;
  t.terminal = true;
  return t;
}

// Fresh (non-stale) update handle for slot `index`.
rl::PrioritizedSample HandleFor(const rl::PrioritizedReplayMemory& mem,
                                size_t index) {
  rl::PrioritizedSample s;
  s.index = index;
  s.generation = mem.generation(index);
  return s;
}

TEST(PrioritizedReplayTest, NewEntriesGetMaxPriority) {
  rl::PrioritizedReplayMemory mem(8);
  mem.Add(MakeTransition(1.0, 0.0));
  EXPECT_TRUE(mem.UpdatePriority(HandleFor(mem, 0), 10.0));  // big TD error
  mem.Add(MakeTransition(2.0, 0.0));
  // The fresh entry inherits the running max priority.
  EXPECT_DOUBLE_EQ(mem.priority(1), mem.priority(0));
}

TEST(PrioritizedReplayTest, SamplingFollowsPriorities) {
  rl::PrioritizedReplayMemory mem(4);
  for (int i = 0; i < 4; ++i) mem.Add(MakeTransition(i, 0.0));
  mem.UpdatePriority(HandleFor(mem, 0), 100.0);  // huge priority
  for (int i = 1; i < 4; ++i) mem.UpdatePriority(HandleFor(mem, i), 1e-6);
  Rng rng(1);
  size_t hits = 0;
  auto batch = mem.Sample(500, rng);
  for (const auto& s : batch) {
    if (s.index == 0) ++hits;
  }
  EXPECT_GT(hits, 400u);  // ≫ uniform share of 125
}

TEST(PrioritizedReplayTest, WeightsNormalisedToAtMostOne) {
  rl::PrioritizedReplayMemory mem(8);
  for (int i = 0; i < 8; ++i) mem.Add(MakeTransition(i, 0.0));
  Rng rng(2);
  for (int i = 0; i < 8; ++i) mem.UpdatePriority(HandleFor(mem, i), 0.5 + i);
  for (const auto& s : mem.Sample(100, rng)) {
    EXPECT_GT(s.weight, 0.0);
    EXPECT_LE(s.weight, 1.0 + 1e-12);
  }
}

TEST(PrioritizedReplayTest, RingEviction) {
  rl::PrioritizedReplayMemory mem(2);
  mem.Add(MakeTransition(1.0, 1.0));
  mem.Add(MakeTransition(2.0, 2.0));
  mem.Add(MakeTransition(3.0, 3.0));  // evicts the first
  EXPECT_EQ(mem.size(), 2u);
  Rng rng(3);
  for (const auto& s : mem.Sample(50, rng)) {
    EXPECT_GE(s.transition->reward, 2.0);
  }
}

// ---------- DQN variants ----------

rl::DqnOptions VariantOptions() {
  rl::DqnOptions o;
  o.hidden_neurons = 16;
  o.batch_size = 16;
  o.min_replay_before_update = 16;
  o.learning_rate = 0.01;
  o.optimizer = rl::OptimizerKind::kAdam;
  return o;
}

class DqnVariant : public ::testing::TestWithParam<int> {};

TEST_P(DqnVariant, AllVariantsLearnTheBandit) {
  rl::DqnOptions opt = VariantOptions();
  switch (GetParam()) {
    case 0: break;                                  // plain (paper)
    case 1: opt.double_dqn = true; break;           // Double DQN
    case 2: opt.prioritized_replay = true; break;   // PER
    case 3: opt.loss = rl::LossKind::kHuber; break; // Huber
    case 4:                                         // everything on
      opt.double_dqn = true;
      opt.prioritized_replay = true;
      opt.loss = rl::LossKind::kHuber;
      opt.huber_delta = 5.0;
      break;
  }
  Rng rng(4 + GetParam());
  rl::DqnAgent agent(1, opt, rng);
  for (int i = 0; i < 300; ++i) {
    agent.Remember(MakeTransition(1.0, 10.0));
    agent.Remember(MakeTransition(-1.0, 0.0));
    agent.Update(rng);
  }
  EXPECT_GT(agent.QValue(Vec{1.0}), agent.QValue(Vec{-1.0}) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Variants, DqnVariant, ::testing::Range(0, 5));

TEST(DqnVariantTest, DoubleDqnBootstrapsChain) {
  rl::DqnOptions opt = VariantOptions();
  opt.double_dqn = true;
  opt.gamma = 0.5;
  Rng rng(9);
  rl::DqnAgent agent(1, opt, rng);
  for (int i = 0; i < 400; ++i) {
    agent.Remember(MakeTransition(1.0, 10.0));
    rl::Transition chain;
    chain.state_action = Vec{0.5};
    chain.reward = 0.0;
    chain.terminal = false;
    chain.next_candidates = {Vec{1.0}};
    agent.Remember(std::move(chain));
    agent.Update(rng);
  }
  EXPECT_NEAR(agent.QValue(Vec{0.5}), 5.0, 3.0);
}

// ---------- Agent persistence ----------

Dataset SmallSkyline(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Dataset raw = GenerateSynthetic(n, d, Distribution::kAntiCorrelated, rng);
  return SkylineOf(raw);
}

TEST(PersistenceTest, EaSaveLoadReproducesBehaviour) {
  Dataset sky = SmallSkyline(600, 3, 60);
  EaOptions opt;
  opt.seed = 5;
  Ea trained(sky, opt);
  Rng rng(6);
  trained.Train(SampleUtilityVectors(20, 3, rng));
  const std::string path = ::testing::TempDir() + "/ea_agent.net";
  ASSERT_TRUE(trained.SaveAgent(path).ok());

  Ea restored(sky, opt);  // same seed ⇒ same action sampling stream
  ASSERT_TRUE(restored.LoadAgent(path).ok());
  // The loaded Q-network matches the trained one on arbitrary inputs.
  Vec probe(trained.input_dim(), 0.1);
  EXPECT_NEAR(trained.agent().QValue(probe), restored.agent().QValue(probe),
              1e-12);
  // And the restored agent still honours the exact guarantee.
  LinearUser user(Vec{0.2, 0.5, 0.3});
  InteractionResult r = restored.Interact(user);
  EXPECT_LT(RegretRatioAt(sky, r.best_index, Vec{0.2, 0.5, 0.3}), opt.epsilon);
}

TEST(PersistenceTest, AaSaveLoadRoundTrip) {
  Dataset sky = SmallSkyline(500, 3, 61);
  AaOptions opt;
  opt.seed = 7;
  Aa trained(sky, opt);
  Rng rng(8);
  trained.Train(SampleUtilityVectors(15, 3, rng));
  const std::string path = ::testing::TempDir() + "/aa_agent.net";
  ASSERT_TRUE(trained.SaveAgent(path).ok());
  Aa restored(sky, opt);
  ASSERT_TRUE(restored.LoadAgent(path).ok());
  Vec probe(trained.input_dim(), 0.05);
  EXPECT_NEAR(trained.agent().QValue(probe), restored.agent().QValue(probe),
              1e-12);
}

TEST(PersistenceTest, LoadRejectsWrongArchitecture) {
  Dataset sky3 = SmallSkyline(300, 3, 62);
  Dataset sky4 = SmallSkyline(300, 4, 63);
  EaOptions opt;
  Ea ea3(sky3, opt);
  Ea ea4(sky4, opt);
  const std::string path = ::testing::TempDir() + "/ea3_agent.net";
  ASSERT_TRUE(ea3.SaveAgent(path).ok());
  EXPECT_FALSE(ea4.LoadAgent(path).ok());
}

TEST(PersistenceTest, LoadMissingFileFails) {
  Dataset sky = SmallSkyline(300, 3, 64);
  Ea ea(sky, EaOptions{});
  EXPECT_EQ(ea.LoadAgent("/nonexistent/agent.net").code(),
            StatusCode::kIoError);
}

// ---------- Question budget (marketing-research constraint) ----------

TEST(BudgetTest, EaRespectsTenQuestionBudget) {
  Dataset sky = SmallSkyline(800, 4, 65);
  EaOptions opt;
  opt.epsilon = 0.02;  // hard enough that the cap can bind
  opt.max_rounds = 10;
  Ea ea(sky, opt);
  Rng rng(66);
  for (int trial = 0; trial < 5; ++trial) {
    Vec u = rng.SimplexUniform(4);
    LinearUser user(u);
    InteractionResult r = ea.Interact(user);
    EXPECT_LE(r.rounds, 10u);
    // Even when capped, the fallback recommendation is sensible.
    EXPECT_LT(RegretRatioAt(sky, r.best_index, u), 0.5);
  }
}

TEST(BudgetTest, AaRespectsBudgetAndDegradesGracefully) {
  Dataset sky = SmallSkyline(800, 8, 67);
  AaOptions opt;
  opt.epsilon = 0.05;
  opt.max_rounds = 10;
  Aa aa(sky, opt);
  Rng rng(68);
  for (int trial = 0; trial < 3; ++trial) {
    Vec u = rng.SimplexUniform(8);
    LinearUser user(u);
    InteractionResult r = aa.Interact(user);
    EXPECT_LE(r.rounds, 10u);
    EXPECT_LT(RegretRatioAt(sky, r.best_index, u), 0.6);
  }
}

}  // namespace
}  // namespace isrl
