// Stress and adversarial tests for the simplex solver: classic cycling
// traps, highly degenerate systems, redundant/conflicting constraints,
// larger random instances cross-checked against interior sampling, and the
// LP shapes AA actually issues at scale.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/simplex.h"

namespace isrl::lp {
namespace {

TEST(SimplexStress, BealesCyclingExample) {
  // Beale (1955): cycles under naive Dantzig pivoting without an
  // anti-cycling rule. min -0.75x4 + 150x5 - 0.02x6 + 6x7 subject to the
  // classic three rows (x1..x3 basic slacks).
  Model m;
  m.SetSense(Sense::kMinimize);
  m.AddVariable(-0.75);
  m.AddVariable(150.0);
  m.AddVariable(-0.02);
  m.AddVariable(6.0);
  m.AddConstraint(Vec{0.25, -60.0, -1.0 / 25.0, 9.0}, Relation::kLe, 0.0);
  m.AddConstraint(Vec{0.5, -90.0, -1.0 / 50.0, 3.0}, Relation::kLe, 0.0);
  m.AddConstraint(Vec{0.0, 0.0, 1.0, 0.0}, Relation::kLe, 1.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_NEAR(r.objective, -0.05, 1e-9);
}

TEST(SimplexStress, KleeMintyCube3D) {
  // Klee-Minty: exponential path for worst-case pivot rules; must still
  // reach the optimum 5^3 = 125 at x = (0, 0, 125)... (classic form:
  // max 100x1 + 10x2 + x3 s.t. x1 ≤ 1, 20x1 + x2 ≤ 100,
  // 200x1 + 20x2 + x3 ≤ 10000).
  Model m;
  m.AddVariable(100.0);
  m.AddVariable(10.0);
  m.AddVariable(1.0);
  m.AddConstraint(Vec{1.0, 0.0, 0.0}, Relation::kLe, 1.0);
  m.AddConstraint(Vec{20.0, 1.0, 0.0}, Relation::kLe, 100.0);
  m.AddConstraint(Vec{200.0, 20.0, 1.0}, Relation::kLe, 10000.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 10000.0, 1e-6);
}

TEST(SimplexStress, ManyRedundantConstraints) {
  // One binding constraint buried under 100 redundant copies scaled by
  // arbitrary factors.
  Model m;
  m.AddVariable(1.0);
  m.AddVariable(1.0);
  m.AddConstraint(Vec{1.0, 1.0}, Relation::kLe, 1.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    double scale = rng.Uniform(1.0, 10.0);
    m.AddConstraint(Vec{scale, scale}, Relation::kLe, scale * rng.Uniform(1.0, 5.0));
  }
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.objective, 1.0, 1e-8);
}

TEST(SimplexStress, TightlySandwichedEqualityViaInequalities) {
  // x ≤ 0.3 and x ≥ 0.3 pin the variable exactly.
  Model m;
  m.AddVariable(1.0);
  m.AddConstraint(Vec{1.0}, Relation::kLe, 0.3);
  m.AddConstraint(Vec{1.0}, Relation::kGe, 0.3);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 0.3, 1e-9);
}

TEST(SimplexStress, InfeasibleByThinMargin) {
  Model m;
  m.AddVariable(0.0);
  m.AddConstraint(Vec{1.0}, Relation::kGe, 0.5 + 1e-7);
  m.AddConstraint(Vec{1.0}, Relation::kLe, 0.5 - 1e-7);
  SolveResult r = Solve(m);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kInfeasible);
}

TEST(SimplexStress, RandomSimplexLpsOptimumDominatesInteriorSamples) {
  // For random objectives over random half-space-restricted simplices, the
  // LP optimum must dominate every rejection-sampled feasible point.
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t d = 3 + static_cast<size_t>(rng.UniformInt(0, 5));
    std::vector<Vec> normals;
    for (int c = 0; c < 4; ++c) {
      normals.push_back(rng.SimplexUniform(d) - rng.SimplexUniform(d));
    }
    Vec obj(d);
    for (size_t i = 0; i < d; ++i) obj[i] = rng.Uniform(-1.0, 1.0);

    Model m;
    for (size_t i = 0; i < d; ++i) m.AddVariable(obj[i]);
    m.AddConstraint(Vec(d, 1.0), Relation::kEq, 1.0);
    for (const Vec& n : normals) m.AddConstraint(n, Relation::kGe, 0.0);
    SolveResult r = Solve(m);
    if (!r.ok()) continue;  // region may be empty; infeasible is legitimate

    int checked = 0;
    for (int probe = 0; probe < 3000 && checked < 200; ++probe) {
      Vec u = rng.SimplexUniform(d);
      bool feasible = true;
      for (const Vec& n : normals) {
        if (Dot(n, u) < 0.0) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      ++checked;
      EXPECT_LE(Dot(obj, u), r.objective + 1e-7);
    }
  }
}

TEST(SimplexStress, LargerDenseInstanceSolves) {
  // 120 constraints × 25 variables — the size AA's geometry LPs reach late
  // in a long interaction.
  Rng rng(3);
  const size_t n = 25, mrows = 120;
  Model m;
  Vec interior(n);
  for (size_t i = 0; i < n; ++i) {
    m.AddVariable(rng.Uniform(-1.0, 1.0));
    interior[i] = rng.Uniform(0.1, 1.0);
  }
  // Constraints all satisfied by `interior` so the LP is feasible.
  for (size_t r = 0; r < mrows; ++r) {
    Vec row(n);
    for (size_t i = 0; i < n; ++i) row[i] = rng.Uniform(-1.0, 1.0);
    m.AddConstraint(row, Relation::kLe, Dot(row, interior) + rng.Uniform(0.01, 1.0));
  }
  // Box to keep it bounded.
  for (size_t i = 0; i < n; ++i) {
    Vec row(n);
    row[i] = 1.0;
    m.AddConstraint(row, Relation::kLe, 2.0);
  }
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GE(r.x[i], -1e-9);
    EXPECT_LE(r.x[i], 2.0 + 1e-7);
  }
}

TEST(SimplexStress, MinimizeAndMaximizeAreConsistent) {
  // max c·x == −min (−c)·x over the same region.
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const size_t d = 4;
    Vec c(d);
    for (size_t i = 0; i < d; ++i) c[i] = rng.Uniform(-1.0, 1.0);
    auto build = [&](Sense sense, double sign) {
      Model m;
      for (size_t i = 0; i < d; ++i) m.AddVariable(sign * c[i]);
      m.SetSense(sense);
      m.AddConstraint(Vec(d, 1.0), Relation::kEq, 1.0);
      return m;
    };
    SolveResult mx = Solve(build(Sense::kMaximize, 1.0));
    SolveResult mn = Solve(build(Sense::kMinimize, -1.0));
    ASSERT_TRUE(mx.ok());
    ASSERT_TRUE(mn.ok());
    EXPECT_NEAR(mx.objective, -mn.objective, 1e-9);
  }
}

TEST(SimplexStress, ZeroRowConstraintHandled) {
  // An all-zero row with non-negative rhs is vacuous; with negative rhs the
  // model is infeasible.
  Model ok_model;
  ok_model.AddVariable(1.0);
  ok_model.AddConstraint(Vec{0.0}, Relation::kLe, 1.0);
  ok_model.AddConstraint(Vec{1.0}, Relation::kLe, 2.0);
  SolveResult ok = Solve(ok_model);
  ASSERT_TRUE(ok.ok());
  EXPECT_NEAR(ok.objective, 2.0, 1e-9);

  Model bad_model;
  bad_model.AddVariable(1.0);
  bad_model.AddConstraint(Vec{0.0}, Relation::kGe, 1.0);  // 0 ≥ 1
  EXPECT_FALSE(Solve(bad_model).ok());
}

// Beale's cycling example as a Model (shared by the recovery tests below).
Model BealeModel() {
  Model m;
  m.SetSense(Sense::kMinimize);
  m.AddVariable(-0.75);
  m.AddVariable(150.0);
  m.AddVariable(-0.02);
  m.AddVariable(6.0);
  m.AddConstraint(Vec{0.25, -60.0, -1.0 / 25.0, 9.0}, Relation::kLe, 0.0);
  m.AddConstraint(Vec{0.5, -90.0, -1.0 / 50.0, 3.0}, Relation::kLe, 0.0);
  m.AddConstraint(Vec{0.0, 0.0, 1.0, 0.0}, Relation::kLe, 1.0);
  return m;
}

TEST(SimplexRecovery, CyclingLpExhaustsPureDantzigPricing) {
  // With Bland's rule pushed past the iteration cap, Dantzig pricing cycles
  // on Beale's example and the solver must report kInternal — the outcome
  // SolveWithRecovery exists to repair.
  SimplexOptions opt;
  opt.max_iterations = 60;
  opt.bland_after = 1000000;  // never: pure Dantzig
  SolveResult r = Solve(BealeModel(), opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kInternal);
  EXPECT_EQ(r.diagnostics.attempts, 1u);
  EXPECT_EQ(r.diagnostics.iterations, 60u);
  EXPECT_EQ(r.diagnostics.phase, 2);
  EXPECT_FALSE(r.diagnostics.used_bland);
}

TEST(SimplexRecovery, BlandFallbackWithEscalatedTolerancesRescuesCycling) {
  // Same doomed options, but through SolveWithRecovery: the second attempt
  // pivots under Bland's rule from the start with escalated tolerances and
  // reaches Beale's optimum. Diagnostics must say exactly that.
  SimplexOptions opt;
  opt.max_iterations = 60;
  opt.bland_after = 1000000;
  SolveResult r = SolveWithRecovery(BealeModel(), opt);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_NEAR(r.objective, -0.05, 1e-6);
  EXPECT_EQ(r.diagnostics.attempts, 2u);
  EXPECT_TRUE(r.diagnostics.used_bland);
  EXPECT_TRUE(r.diagnostics.escalated);
  EXPECT_FALSE(r.diagnostics.perturbed);
  EXPECT_FALSE(r.diagnostics.injected_fault);
}

TEST(SimplexRecovery, GenuineInfeasibilityIsNotRetried) {
  Model m;
  m.AddVariable(0.0);
  m.AddConstraint(Vec{1.0}, Relation::kGe, 0.5 + 1e-7);
  m.AddConstraint(Vec{1.0}, Relation::kLe, 0.5 - 1e-7);
  SolveResult r = SolveWithRecovery(m);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kInfeasible);
  EXPECT_EQ(r.diagnostics.attempts, 1u);  // no retry for a real answer
}

TEST(SimplexRecovery, InjectedFaultForcesRetryPath) {
  Model m;
  m.AddVariable(1.0);
  m.AddConstraint(Vec{1.0}, Relation::kLe, 2.0);

  FailingLpHook hook(1);
  SolveResult r = SolveWithRecovery(m);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
  EXPECT_EQ(r.diagnostics.attempts, 2u);
  EXPECT_TRUE(r.diagnostics.injected_fault);
  EXPECT_TRUE(r.diagnostics.escalated);
  EXPECT_EQ(hook.attempts_seen(), 2u);
  EXPECT_EQ(hook.failures_injected(), 1u);
}

TEST(SimplexRecovery, TwoInjectedFaultsReachThePerturbedLastAttempt) {
  Model m;
  m.AddVariable(1.0);
  m.AddConstraint(Vec{1.0}, Relation::kLe, 2.0);

  FailingLpHook hook(2);
  SolveResult r = SolveWithRecovery(m);
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  // The perturbation relaxes the ≤ rhs by a deterministic hair; the optimum
  // moves by at most that hair.
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
  EXPECT_EQ(r.diagnostics.attempts, 3u);
  EXPECT_TRUE(r.diagnostics.perturbed);
  EXPECT_TRUE(r.diagnostics.injected_fault);
  EXPECT_EQ(hook.failures_injected(), 2u);
}

TEST(SimplexRecovery, ExhaustedRetriesReportInternalWithFullDiagnostics) {
  Model m;
  m.AddVariable(1.0);
  m.AddConstraint(Vec{1.0}, Relation::kLe, 2.0);

  FailingLpHook hook(100);  // more failures than attempts
  SolveResult r = SolveWithRecovery(m);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status.code(), StatusCode::kInternal);
  EXPECT_EQ(r.diagnostics.attempts, 3u);
  EXPECT_TRUE(r.diagnostics.injected_fault);
}

TEST(SimplexStress, FreeVariablePinnedByEqualities) {
  // Free y with x + y = 0.2, x − y = 1.0 → x = 0.6, y = −0.4.
  Model m;
  m.AddVariable(0.0);                 // x ≥ 0
  m.AddVariable(1.0, /*nonneg=*/false);  // y free, maximised
  m.AddConstraint(Vec{1.0, 1.0}, Relation::kEq, 0.2);
  m.AddConstraint(Vec{1.0, -1.0}, Relation::kEq, 1.0);
  SolveResult r = Solve(m);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.x[0], 0.6, 1e-9);
  EXPECT_NEAR(r.x[1], -0.4, 1e-9);
}

}  // namespace
}  // namespace isrl::lp
