// Unit tests for src/common: vectors, matrices, linear solves, RNG, Status,
// string utilities.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/matrix.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/vec.h"

namespace isrl {
namespace {

// ---------- Vec ----------

TEST(VecTest, ConstructionAndAccess) {
  Vec zero(3);
  EXPECT_EQ(zero.dim(), 3u);
  EXPECT_EQ(zero[0], 0.0);
  Vec filled(4, 2.5);
  EXPECT_EQ(filled[3], 2.5);
  Vec lit{1.0, 2.0, 3.0};
  EXPECT_EQ(lit[1], 2.0);
  lit[1] = 7.0;
  EXPECT_EQ(lit[1], 7.0);
}

TEST(VecTest, Arithmetic) {
  Vec a{1.0, 2.0, 3.0};
  Vec b{4.0, 5.0, 6.0};
  Vec sum = a + b;
  EXPECT_TRUE(ApproxEqual(sum, Vec{5.0, 7.0, 9.0}));
  Vec diff = b - a;
  EXPECT_TRUE(ApproxEqual(diff, Vec{3.0, 3.0, 3.0}));
  EXPECT_TRUE(ApproxEqual(a * 2.0, Vec{2.0, 4.0, 6.0}));
  EXPECT_TRUE(ApproxEqual(2.0 * a, Vec{2.0, 4.0, 6.0}));
  EXPECT_TRUE(ApproxEqual(b / 2.0, Vec{2.0, 2.5, 3.0}));
}

TEST(VecTest, DotAndNorms) {
  Vec a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.NormSquared(), 25.0);
  Vec b{1.0, -1.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), -1.0);
  EXPECT_DOUBLE_EQ(Distance(a, Vec{0.0, 0.0}), 5.0);
}

TEST(VecTest, Reductions) {
  Vec a{1.0, -2.0, 5.0, 3.0};
  EXPECT_DOUBLE_EQ(a.Sum(), 7.0);
  EXPECT_DOUBLE_EQ(a.Max(), 5.0);
  EXPECT_DOUBLE_EQ(a.Min(), -2.0);
  EXPECT_EQ(a.ArgMax(), 2u);
}

TEST(VecTest, ArgMaxFirstOnTies) {
  Vec a{3.0, 5.0, 5.0};
  EXPECT_EQ(a.ArgMax(), 1u);
}

TEST(VecTest, AppendAndConcat) {
  Vec a{1.0, 2.0};
  Vec b{3.0};
  a.Append(b);
  EXPECT_TRUE(ApproxEqual(a, Vec{1.0, 2.0, 3.0}));
  a.PushBack(4.0);
  EXPECT_EQ(a.dim(), 4u);
  Vec c = Concat(Vec{1.0}, Vec{2.0, 3.0});
  EXPECT_TRUE(ApproxEqual(c, Vec{1.0, 2.0, 3.0}));
}

TEST(VecTest, ApproxEqualRespectsTolerance) {
  Vec a{1.0, 2.0};
  Vec b{1.0, 2.0 + 1e-10};
  EXPECT_TRUE(ApproxEqual(a, b, 1e-9));
  EXPECT_FALSE(ApproxEqual(a, b, 1e-11));
  EXPECT_FALSE(ApproxEqual(a, Vec{1.0, 2.0, 3.0}));
}

TEST(VecDeathTest, DimensionMismatchAborts) {
  Vec a{1.0, 2.0};
  Vec b{1.0};
  EXPECT_DEATH(Dot(a, b), "ISRL_CHECK");
  EXPECT_DEATH(a += b, "ISRL_CHECK");
}

// ---------- Matrix ----------

TEST(MatrixTest, MultiplyVector) {
  Matrix m(2, 3);
  m(0, 0) = 1.0; m(0, 1) = 2.0; m(0, 2) = 3.0;
  m(1, 0) = 4.0; m(1, 1) = 5.0; m(1, 2) = 6.0;
  Vec x{1.0, 1.0, 1.0};
  EXPECT_TRUE(ApproxEqual(m.Multiply(x), Vec{6.0, 15.0}));
  Vec y{1.0, 2.0};
  EXPECT_TRUE(ApproxEqual(m.MultiplyTransposed(y), Vec{9.0, 12.0, 15.0}));
}

TEST(MatrixTest, Identity) {
  Matrix id = Matrix::Identity(3);
  Vec x{2.0, -1.0, 0.5};
  EXPECT_TRUE(ApproxEqual(id.Multiply(x), x));
}

TEST(MatrixTest, FromRowsStacksAndRowVecExtracts) {
  std::vector<Vec> rows = {Vec{1.0, 2.0}, Vec{3.0, 4.0}, Vec{5.0, 6.0}};
  Matrix m = Matrix::FromRows(rows);
  ASSERT_EQ(m.rows(), 3u);
  ASSERT_EQ(m.cols(), 2u);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_TRUE(ApproxEqual(m.RowVec(r), rows[r], 0.0));
  }
}

TEST(GemmTest, TransposedBMatchesNaive) {
  // Shapes straddling the 32×32 tile boundary exercise full tiles, the
  // 4-wide register-tile remainder, and partial edge tiles.
  Rng rng(21);
  for (size_t m : {1u, 3u, 33u}) {
    for (size_t n : {1u, 5u, 37u}) {
      const size_t k = 1 + static_cast<size_t>(rng.UniformInt(1, 40));
      Matrix a(m, k), b(n, k);
      for (double& v : a.data()) v = rng.Uniform(-1.0, 1.0);
      for (double& v : b.data()) v = rng.Uniform(-1.0, 1.0);
      Matrix c = MatMulTransposedB(a, b);
      ASSERT_EQ(c.rows(), m);
      ASSERT_EQ(c.cols(), n);
      for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
          double want = 0.0;
          for (size_t t = 0; t < k; ++t) want += a(i, t) * b(j, t);
          EXPECT_NEAR(c(i, j), want, 1e-12);
        }
      }
    }
  }
}

TEST(GemmTest, BiasIsAddedPerColumn) {
  Matrix a(2, 3), b(4, 3);
  Rng rng(22);
  for (double& v : a.data()) v = rng.Uniform(-1.0, 1.0);
  for (double& v : b.data()) v = rng.Uniform(-1.0, 1.0);
  Vec bias{0.5, -1.0, 2.0, 0.0};
  Matrix c(2, 4);
  GemmTransposedB(2, 4, 3, a.data().data(), b.data().data(), bias.raw(),
                  c.data().data());
  Matrix no_bias = MatMulTransposedB(a, b);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(c(i, j), no_bias(i, j) + bias[j], 1e-12);
    }
  }
}

TEST(GemmTest, SingleRowIsBitIdenticalToDotProduct) {
  // The scalar NN path is the m=1 case of the batched kernel; the sequential
  // k-accumulation makes them exactly equal, not just close.
  Rng rng(23);
  const size_t k = 70;  // crosses the 4-wide inner tile several times
  Matrix a(1, k), b(6, k);
  for (double& v : a.data()) v = rng.Uniform(-1.0, 1.0);
  for (double& v : b.data()) v = rng.Uniform(-1.0, 1.0);
  Matrix c = MatMulTransposedB(a, b);
  for (size_t j = 0; j < 6; ++j) {
    double want = 0.0;
    for (size_t t = 0; t < k; ++t) want += a(0, t) * b(j, t);
    EXPECT_EQ(c(0, j), want);
  }
}

TEST(LinearSolveTest, SolvesDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(1, 1) = 4.0;
  Vec x;
  ASSERT_TRUE(SolveLinearSystem(a, Vec{2.0, 8.0}, &x));
  EXPECT_TRUE(ApproxEqual(x, Vec{1.0, 2.0}, 1e-12));
}

TEST(LinearSolveTest, SolvesGeneral3x3) {
  Matrix a(3, 3);
  double vals[3][3] = {{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}};
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 3; ++c) a(r, c) = vals[r][c];
  Vec x;
  ASSERT_TRUE(SolveLinearSystem(a, Vec{8.0, -11.0, -3.0}, &x));
  EXPECT_TRUE(ApproxEqual(x, Vec{2.0, 3.0, -1.0}, 1e-9));
}

TEST(LinearSolveTest, RequiresPivoting) {
  // Zero pivot in the (0,0) slot forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  Vec x;
  ASSERT_TRUE(SolveLinearSystem(a, Vec{3.0, 5.0}, &x));
  EXPECT_TRUE(ApproxEqual(x, Vec{5.0, 3.0}, 1e-12));
}

TEST(LinearSolveTest, DetectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  Vec x;
  EXPECT_FALSE(SolveLinearSystem(a, Vec{1.0, 2.0}, &x));
}

TEST(LinearSolveTest, RandomRoundTrip) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + static_cast<size_t>(rng.UniformInt(1, 6));
    Matrix a(n, n);
    Vec truth(n);
    for (size_t r = 0; r < n; ++r) {
      truth[r] = rng.Uniform(-2.0, 2.0);
      for (size_t c = 0; c < n; ++c) a(r, c) = rng.Uniform(-1.0, 1.0);
      a(r, r) += 3.0;  // diagonally dominant: well-conditioned
    }
    Vec b = a.Multiply(truth);
    Vec x;
    ASSERT_TRUE(SolveLinearSystem(a, b, &x));
    EXPECT_TRUE(ApproxEqual(x, truth, 1e-8)) << "n=" << n;
  }
}

// ---------- Rng ----------

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values reachable
}

TEST(RngTest, SimplexUniformOnSimplex) {
  Rng rng(3);
  for (size_t d = 2; d <= 10; ++d) {
    Vec u = rng.SimplexUniform(d);
    EXPECT_EQ(u.dim(), d);
    EXPECT_NEAR(u.Sum(), 1.0, 1e-12);
    for (size_t i = 0; i < d; ++i) EXPECT_GE(u[i], 0.0);
  }
}

TEST(RngTest, SimplexUniformCoversInterior) {
  // Mean of many simplex-uniform draws approaches the barycentre.
  Rng rng(4);
  const size_t d = 3;
  Vec mean(d);
  const int n = 20000;
  for (int i = 0; i < n; ++i) mean += rng.SimplexUniform(d);
  mean /= static_cast<double>(n);
  for (size_t i = 0; i < d; ++i) EXPECT_NEAR(mean[i], 1.0 / 3.0, 0.01);
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    auto idx = rng.SampleIndices(20, 7);
    ASSERT_EQ(idx.size(), 7u);
    std::set<size_t> s(idx.begin(), idx.end());
    EXPECT_EQ(s.size(), 7u);
    for (size_t i : idx) EXPECT_LT(i, 20u);
  }
}

TEST(RngTest, SampleIndicesFullSet) {
  Rng rng(6);
  auto idx = rng.SampleIndices(5, 5);
  std::set<size_t> s(idx.begin(), idx.end());
  EXPECT_EQ(s.size(), 5u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

// ---------- Status ----------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Infeasible("no feasible point");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
  EXPECT_EQ(s.ToString(), "Infeasible: no feasible point");
}

TEST(StatusTest, AllCodesNamed) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnbounded), "Unbounded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_DEATH(r.value(), "ISRL_CHECK");
}

// ---------- Strings ----------

TEST(StringsTest, SplitKeepsEmptyFields) {
  auto fields = Split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("abc"), "abc");
}

TEST(StringsTest, ParseDouble) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -1e-3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringsTest, ParseUint64) {
  uint64_t v = 1;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64(" 42 ", &v));  // surrounding whitespace is fine
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));  // UINT64_MAX
  EXPECT_EQ(v, UINT64_MAX);
  // Everything atoll silently mangles must be rejected outright.
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("   ", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("+7", &v));
  EXPECT_FALSE(ParseUint64("12abc", &v));
  EXPECT_FALSE(ParseUint64("abc", &v));
  EXPECT_FALSE(ParseUint64("1e9", &v));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // UINT64_MAX + 1
  EXPECT_FALSE(ParseUint64("99999999999999999999", &v));
}

TEST(StringsTest, Format) {
  EXPECT_EQ(Format("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(Format("%.2f", 1.239), "1.24");
}

// ---------- Stopwatch ----------

TEST(StopwatchTest, MonotoneNonNegative) {
  Stopwatch w;
  double t1 = w.ElapsedSeconds();
  double t2 = w.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  w.Restart();
  EXPECT_LE(w.ElapsedSeconds(), t2 + 1.0);
}

}  // namespace
}  // namespace isrl
