// End-to-end tests for the baselines: UH-Random, UH-Simplex, SinglePass,
// UtilityApprox.
#include <gtest/gtest.h>

#include "baselines/single_pass.h"
#include "baselines/uh_random.h"
#include "baselines/uh_simplex.h"
#include "baselines/utility_approx.h"
#include "core/regret.h"
#include "core/session.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "user/sampler.h"
#include "user/user.h"

namespace isrl {
namespace {

Dataset SmallSkyline(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Dataset raw = GenerateSynthetic(n, d, Distribution::kAntiCorrelated, rng);
  return SkylineOf(raw);
}

// ---------- UH family ----------

class UhGuaranteeProperty
    : public ::testing::TestWithParam<std::tuple<bool, size_t, double>> {};

TEST_P(UhGuaranteeProperty, RegretBelowEpsilonWhenConverged) {
  auto [use_simplex, d, eps] = GetParam();
  Dataset sky = SmallSkyline(600, d, 30 + d);
  UhOptions opt;
  opt.epsilon = eps;
  std::unique_ptr<UhBase> algo;
  if (use_simplex) {
    algo = std::make_unique<UhSimplex>(sky, opt);
  } else {
    algo = std::make_unique<UhRandom>(sky, opt);
  }
  Rng rng(31);
  for (int trial = 0; trial < 4; ++trial) {
    Vec u = rng.SimplexUniform(d);
    LinearUser user(u);
    InteractionResult r = algo->Interact(user);
    if (r.converged) {
      EXPECT_LT(RegretRatioAt(sky, r.best_index, u), eps)
          << algo->name() << " d=" << d;
    }
    EXPECT_EQ(user.questions_asked(), r.rounds);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, UhGuaranteeProperty,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values(2, 3, 4),
                                            ::testing::Values(0.1, 0.25)));

TEST(UhRandomTest, ConvergesOnTypicalInputs) {
  Dataset sky = SmallSkyline(800, 3, 32);
  UhOptions opt;
  UhRandom uh(sky, opt);
  Rng rng(33);
  auto eval = SampleUtilityVectors(10, 3, rng);
  EvalStats s = Evaluate(uh, sky, eval, opt.epsilon);
  EXPECT_GE(s.frac_converged, 0.9);
  EXPECT_GE(s.frac_within_eps, 0.9);
}

TEST(UhSimplexTest, ConvergesOnTypicalInputs) {
  Dataset sky = SmallSkyline(800, 3, 34);
  UhOptions opt;
  UhSimplex uh(sky, opt);
  Rng rng(35);
  auto eval = SampleUtilityVectors(10, 3, rng);
  EvalStats s = Evaluate(uh, sky, eval, opt.epsilon);
  EXPECT_GE(s.frac_converged, 0.9);
  EXPECT_GE(s.frac_within_eps, 0.9);
}

TEST(UhTest, InsensitiveToEpsilonInRounds) {
  // The short-term-focused baselines do not exploit a looser ε — the effect
  // the paper highlights in Figure 9(a): "they needed almost the same number
  // of interactive rounds, regardless of the value of ε". Our UH stops on
  // candidate resolution, so the round count is ε-independent by design.
  Dataset sky = SmallSkyline(600, 3, 36);
  Rng rng(37);
  auto eval = SampleUtilityVectors(8, 3, rng);
  UhOptions tight;
  tight.epsilon = 0.05;
  UhRandom uh_tight(sky, tight);
  EvalStats s_tight = Evaluate(uh_tight, sky, eval, 0.05);
  UhOptions loose;
  loose.epsilon = 0.25;
  UhRandom uh_loose(sky, loose);
  EvalStats s_loose = Evaluate(uh_loose, sky, eval, 0.25);
  EXPECT_NEAR(s_loose.mean_rounds, s_tight.mean_rounds, 1e-9);
  EXPECT_GT(s_tight.mean_rounds, 0.0);
}

TEST(UhTest, NoisyUserTerminates) {
  Dataset sky = SmallSkyline(400, 3, 38);
  UhOptions opt;
  UhRandom uh(sky, opt);
  Rng rng(39);
  for (int trial = 0; trial < 3; ++trial) {
    NoisyUser user(rng.SimplexUniform(3), 0.3, rng);
    InteractionResult r = uh.Interact(user);
    EXPECT_LE(r.rounds, opt.max_rounds);
    EXPECT_LT(r.best_index, sky.size());
  }
}

// ---------- SinglePass ----------

TEST(SinglePassTest, FindsLowRegretPointEventually) {
  Dataset sky = SmallSkyline(800, 3, 40);
  SinglePassOptions opt;
  opt.epsilon = 0.1;
  SinglePass sp(sky, opt);
  Rng rng(41);
  auto eval = SampleUtilityVectors(8, 3, rng);
  EvalStats s = Evaluate(sp, sky, eval, opt.epsilon);
  EXPECT_GE(s.frac_within_eps, 0.8);
}

TEST(SinglePassTest, AsksManyMoreQuestionsThanUh) {
  // The characteristic the ISRL paper exploits: SinglePass trades questions
  // for speed.
  Dataset sky = SmallSkyline(800, 4, 42);
  Rng rng(43);
  auto eval = SampleUtilityVectors(6, 4, rng);
  SinglePassOptions spo;
  SinglePass sp(sky, spo);
  EvalStats s_sp = Evaluate(sp, sky, eval, spo.epsilon);
  UhOptions uo;
  UhRandom uh(sky, uo);
  EvalStats s_uh = Evaluate(uh, sky, eval, uo.epsilon);
  EXPECT_GT(s_sp.mean_rounds, s_uh.mean_rounds);
}

TEST(SinglePassTest, RespectsQuestionCap) {
  Dataset sky = SmallSkyline(1500, 10, 44);
  SinglePassOptions opt;
  opt.epsilon = 0.05;
  opt.max_questions = 100;
  SinglePass sp(sky, opt);
  LinearUser user(Rng(45).SimplexUniform(10));
  InteractionResult r = sp.Interact(user);
  EXPECT_LE(r.rounds, 100u);
}

TEST(SinglePassTest, ChampionBeatsEveryPointItFaced) {
  // The returned champion won its last comparison against each challenger it
  // met; at minimum it must not be Pareto-dominated.
  Dataset sky = SmallSkyline(500, 3, 46);
  SinglePassOptions opt;
  SinglePass sp(sky, opt);
  Rng rng(47);
  Vec u = rng.SimplexUniform(3);
  LinearUser user(u);
  InteractionResult r = sp.Interact(user);
  for (size_t i = 0; i < sky.size(); ++i) {
    EXPECT_FALSE(Dominates(sky.point(i), sky.point(r.best_index)));
  }
}

TEST(SinglePassTest, NoisyUserTerminates) {
  Dataset sky = SmallSkyline(400, 3, 48);
  SinglePassOptions opt;
  opt.max_questions = 500;
  SinglePass sp(sky, opt);
  Rng rng(49);
  NoisyUser user(rng.SimplexUniform(3), 0.2, rng);
  InteractionResult r = sp.Interact(user);
  EXPECT_LE(r.rounds, 500u);
}

// ---------- UtilityApprox ----------

TEST(UtilityApproxTest, FakeTupleBinarySearchFindsGoodPoint) {
  Dataset sky = SmallSkyline(600, 3, 50);
  UtilityApproxOptions opt;
  opt.epsilon = 0.15;
  UtilityApprox ua(sky, opt);
  Rng rng(51);
  int good = 0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    Vec u = rng.SimplexUniform(3);
    LinearUser user(u);
    InteractionResult r = ua.Interact(user);
    if (RegretRatioAt(sky, r.best_index, u) < 2.0 * opt.epsilon) ++good;
  }
  EXPECT_GE(good, trials * 2 / 3);
}

TEST(UtilityApproxTest, UsesFakeTuplesNotDataPoints) {
  // The questions are constructed, so the user's oracle sees vectors that
  // need not exist in the dataset — verify it still terminates and answers.
  Dataset sky = SmallSkyline(300, 4, 52);
  UtilityApproxOptions opt;
  UtilityApprox ua(sky, opt);
  LinearUser user(Rng(53).SimplexUniform(4));
  InteractionResult r = ua.Interact(user);
  EXPECT_GT(r.rounds, 0u);
  EXPECT_LE(r.rounds, opt.max_rounds);
  EXPECT_LT(r.best_index, sky.size());
}


// ---------- Baseline internals / additional properties ----------

TEST(SinglePassTest, MoreQuestionsAtTighterEpsilon) {
  Dataset sky = SmallSkyline(800, 4, 54);
  Rng rng(55);
  auto eval = SampleUtilityVectors(6, 4, rng);
  SinglePassOptions tight;
  tight.epsilon = 0.05;
  SinglePass sp_tight(sky, tight);
  EvalStats s_tight = Evaluate(sp_tight, sky, eval, 0.05);
  SinglePassOptions loose;
  loose.epsilon = 0.25;
  SinglePass sp_loose(sky, loose);
  EvalStats s_loose = Evaluate(sp_loose, sky, eval, 0.25);
  EXPECT_LE(s_loose.mean_rounds, s_tight.mean_rounds + 1e-9);
}

TEST(SinglePassTest, DeterministicGivenSeed) {
  Dataset sky = SmallSkyline(500, 3, 56);
  auto run = [&]() {
    SinglePassOptions opt;
    opt.seed = 17;
    SinglePass sp(sky, opt);
    LinearUser user(Vec{0.3, 0.3, 0.4});
    InteractionResult r = sp.Interact(user);
    return std::make_pair(r.rounds, r.best_index);
  };
  EXPECT_EQ(run(), run());
}

TEST(UtilityApproxTest, TighterEpsilonNeedsMoreRounds) {
  Dataset sky = SmallSkyline(500, 3, 57);
  Rng rng(58);
  auto eval = SampleUtilityVectors(6, 3, rng);
  UtilityApproxOptions tight;
  tight.epsilon = 0.05;
  UtilityApprox ua_tight(sky, tight);
  EvalStats s_tight = Evaluate(ua_tight, sky, eval, 0.05);
  UtilityApproxOptions loose;
  loose.epsilon = 0.3;
  UtilityApprox ua_loose(sky, loose);
  EvalStats s_loose = Evaluate(ua_loose, sky, eval, 0.3);
  EXPECT_LE(s_loose.mean_rounds, s_tight.mean_rounds + 1e-9);
}

TEST(UtilityApproxTest, QuestionsCountedOnUser) {
  Dataset sky = SmallSkyline(300, 3, 59);
  UtilityApproxOptions opt;
  UtilityApprox ua(sky, opt);
  LinearUser user(Rng(60).SimplexUniform(3));
  InteractionResult r = ua.Interact(user);
  EXPECT_EQ(user.questions_asked(), r.rounds);
}

TEST(UhTest, QuestionsAlwaysOverCandidates) {
  // Every question UH asks must involve two distinct in-range indices; the
  // user-facing points must come from the dataset (real-tuple property the
  // SIGMOD'19 paper emphasises against UtilityApprox).
  Dataset sky = SmallSkyline(400, 3, 61);
  class CheckingUser : public UserOracle {
   public:
    CheckingUser(const Dataset* sky, Vec u) : sky_(sky), inner_(std::move(u)) {}
    bool Prefers(const Vec& a, const Vec& b) override {
      ++questions_asked_;
      EXPECT_TRUE(IsDatasetPoint(a));
      EXPECT_TRUE(IsDatasetPoint(b));
      return inner_.Prefers(a, b);
    }
   private:
    bool IsDatasetPoint(const Vec& p) const {
      for (size_t i = 0; i < sky_->size(); ++i) {
        if (ApproxEqual(sky_->point(i), p, 0.0)) return true;
      }
      return false;
    }
    const Dataset* sky_;
    LinearUser inner_;
  };
  UhOptions opt;
  UhRandom uh(sky, opt);
  CheckingUser user(&sky, Rng(62).SimplexUniform(3));
  uh.Interact(user);
}

TEST(UhTest, LargerDatasetStillConverges) {
  Dataset sky = SmallSkyline(5000, 3, 63);
  UhOptions opt;
  UhRandom uh(sky, opt);
  LinearUser user(Rng(64).SimplexUniform(3));
  InteractionResult r = uh.Interact(user);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.rounds, opt.max_rounds);
}

}  // namespace
}  // namespace isrl
