// End-to-end tests for algorithm AA: the Lemma 9 bound, empirical accuracy,
// scalability to high d, determinism, and the noisy-user extension.
#include <cmath>

#include <gtest/gtest.h>

#include "core/aa.h"
#include "core/regret.h"
#include "core/session.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "user/sampler.h"
#include "user/user.h"

namespace isrl {
namespace {

Dataset SmallSkyline(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Dataset raw = GenerateSynthetic(n, d, Distribution::kAntiCorrelated, rng);
  return SkylineOf(raw);
}

rl::DqnOptions FastDqn() {
  rl::DqnOptions o;
  o.hidden_neurons = 32;
  return o;
}

TEST(AaTest, StopDistanceFollowsLemma9) {
  Dataset sky = SmallSkyline(300, 4, 1);
  AaOptions opt;
  opt.epsilon = 0.1;
  opt.dqn = FastDqn();
  Aa aa(sky, opt);
  EXPECT_NEAR(aa.StopDistance(), 2.0 * std::sqrt(4.0) * 0.1, 1e-12);
}

TEST(AaTest, ConvergedRunsSatisfyLemma9Bound) {
  // Lemma 9 guarantees regret ≤ d²ε when the certificate fires; empirically
  // (§V) the regret is below ε itself — we assert the hard bound and track
  // the empirical one.
  Dataset sky = SmallSkyline(800, 3, 2);
  AaOptions opt;
  opt.epsilon = 0.1;
  opt.dqn = FastDqn();
  Aa aa(sky, opt);
  Rng rng(3);
  int within_eps = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    Vec u = rng.SimplexUniform(3);
    LinearUser user(u);
    InteractionResult r = aa.Interact(user);
    double regret = RegretRatioAt(sky, r.best_index, u);
    if (r.converged) {
      EXPECT_LE(regret, 9.0 * opt.epsilon + 1e-9);  // d²ε
    }
    if (regret < opt.epsilon) ++within_eps;
  }
  EXPECT_GE(within_eps, trials * 7 / 10);  // "typically below ε"
}

class AaGuaranteeProperty
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(AaGuaranteeProperty, TerminatesWithBoundedRegretAcrossDims) {
  auto [d, eps] = GetParam();
  Dataset sky = SmallSkyline(500, d, 20 + d);
  AaOptions opt;
  opt.epsilon = eps;
  opt.dqn = FastDqn();
  Aa aa(sky, opt);
  Rng rng(4);
  for (int trial = 0; trial < 3; ++trial) {
    Vec u = rng.SimplexUniform(d);
    LinearUser user(u);
    InteractionResult r = aa.Interact(user);
    EXPECT_LE(r.rounds, opt.max_rounds);
    double regret = RegretRatioAt(sky, r.best_index, u);
    if (r.converged) {
      EXPECT_LE(regret,
                static_cast<double>(d) * static_cast<double>(d) * eps + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AaGuaranteeProperty,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values(0.1, 0.2)));

TEST(AaTest, ScalesToHighDimensions) {
  // AA's selling point: it runs where polyhedron algorithms cannot (d = 12
  // here to keep the test fast; the benches go to 25).
  Dataset sky = SmallSkyline(800, 12, 5);
  AaOptions opt;
  opt.epsilon = 0.2;
  opt.dqn = FastDqn();
  Aa aa(sky, opt);
  LinearUser user(Rng(6).SimplexUniform(12));
  InteractionResult r = aa.Interact(user);
  EXPECT_GT(r.rounds, 0u);
  EXPECT_LE(r.rounds, opt.max_rounds);
}

TEST(AaTest, TrainingRunsAndPopulatesReplay) {
  Dataset sky = SmallSkyline(500, 3, 7);
  AaOptions opt;
  opt.dqn = FastDqn();
  Aa aa(sky, opt);
  Rng rng(8);
  TrainStats stats = aa.Train(SampleUtilityVectors(15, 3, rng));
  EXPECT_EQ(stats.episodes, 15u);
  EXPECT_GT(stats.mean_rounds, 0.0);
  EXPECT_GT(aa.agent().replay().size(), 0u);
}

TEST(AaTest, LargerEpsilonFewerRounds) {
  Dataset sky = SmallSkyline(800, 4, 9);
  Rng rng(10);
  auto eval = SampleUtilityVectors(10, 4, rng);

  AaOptions tight;
  tight.epsilon = 0.05;
  tight.dqn = FastDqn();
  Aa aa_tight(sky, tight);
  EvalStats s_tight = Evaluate(aa_tight, sky, eval, 0.05);

  AaOptions loose;
  loose.epsilon = 0.25;
  loose.dqn = FastDqn();
  Aa aa_loose(sky, loose);
  EvalStats s_loose = Evaluate(aa_loose, sky, eval, 0.25);

  EXPECT_LT(s_loose.mean_rounds, s_tight.mean_rounds);
}

TEST(AaTest, DeterministicGivenSeed) {
  Dataset sky = SmallSkyline(400, 3, 11);
  auto run = [&]() {
    AaOptions opt;
    opt.seed = 77;
    opt.dqn = FastDqn();
    Aa aa(sky, opt);
    LinearUser user(Vec{0.5, 0.2, 0.3});
    InteractionResult r = aa.Interact(user);
    return std::make_pair(r.rounds, r.best_index);
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(AaTest, TraceRecordsProgress) {
  Dataset sky = SmallSkyline(600, 3, 12);
  AaOptions opt;
  opt.dqn = FastDqn();
  Aa aa(sky, opt);
  Rng trace_rng(13);
  InteractionTrace trace(&sky, 100, &trace_rng);
  LinearUser user(Rng(14).SimplexUniform(3));
  InteractionResult r = aa.Interact(user, &trace);
  EXPECT_EQ(trace.rounds(), r.rounds);
  for (size_t i = 1; i < trace.rounds(); ++i) {
    EXPECT_GE(trace.cumulative_seconds()[i], trace.cumulative_seconds()[i - 1]);
  }
}

TEST(AaTest, NoisyUserDoesNotCrash) {
  Dataset sky = SmallSkyline(500, 3, 15);
  AaOptions opt;
  opt.dqn = FastDqn();
  Aa aa(sky, opt);
  Rng rng(16);
  for (int trial = 0; trial < 5; ++trial) {
    NoisyUser user(rng.SimplexUniform(3), 0.25, rng);
    InteractionResult r = aa.Interact(user);
    EXPECT_LT(r.best_index, sky.size());
  }
}

TEST(AaTest, InputDimIsSixDPlusOne) {
  Dataset sky = SmallSkyline(300, 5, 17);
  AaOptions opt;
  opt.dqn = FastDqn();
  Aa aa(sky, opt);
  EXPECT_EQ(aa.input_dim(), 6u * 5 + 1 + Aa::kActionDescriptors);
}

TEST(AaTest, QuestionsCountedOnUser) {
  Dataset sky = SmallSkyline(400, 3, 18);
  AaOptions opt;
  opt.dqn = FastDqn();
  Aa aa(sky, opt);
  LinearUser user(Rng(19).SimplexUniform(3));
  InteractionResult r = aa.Interact(user);
  EXPECT_EQ(user.questions_asked(), r.rounds);
}

}  // namespace
}  // namespace isrl
