// Step-API equivalence suite (DESIGN.md §13): for every algorithm, an
// externally stepped InteractionSession must yield a bit-identical
// InteractionResult — and identical trace vectors — to the blocking
// Interact() driver, under honest users, faulty users (flips, kNoAnswer
// timeouts), and exhausted budgets. Plus SessionScheduler: N coalesced
// sessions equal N sequential Interact() calls, answer-order independent.
#include <algorithm>
#include <initializer_list>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/single_pass.h"
#include "baselines/uh_random.h"
#include "baselines/uh_simplex.h"
#include "baselines/utility_approx.h"
#include "common/budget.h"
#include "common/rng.h"
#include "core/aa.h"
#include "core/ea.h"
#include "core/scheduler.h"
#include "core/session.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "user/faulty.h"
#include "user/sampler.h"
#include "user/user.h"

namespace isrl {
namespace {

Dataset SmallSkyline(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Dataset raw = GenerateSynthetic(n, d, Distribution::kAntiCorrelated, rng);
  return SkylineOf(raw);
}

rl::DqnOptions FastDqn() {
  rl::DqnOptions o;
  o.hidden_neurons = 32;
  o.batch_size = 16;
  o.min_replay_before_update = 16;
  return o;
}

// Everything in an InteractionResult except `seconds` (wall clock).
void ExpectSameResult(const InteractionResult& a, const InteractionResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.best_index, b.best_index) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.converged, b.converged) << label;
  EXPECT_EQ(a.termination, b.termination) << label;
  EXPECT_EQ(a.dropped_answers, b.dropped_answers) << label;
  EXPECT_EQ(a.no_answers, b.no_answers) << label;
  EXPECT_EQ(a.status.ok(), b.status.ok()) << label;
}

// Drives a session by hand, exactly as an asynchronous caller would —
// checking along the way that NextQuestion() is idempotent (a second call
// returns the same question without advancing the state machine).
InteractionResult StepByHand(InteractiveAlgorithm& algo, UserOracle& user,
                             const RunBudget& budget,
                             InteractionTrace* trace = nullptr) {
  SessionConfig config;
  config.budget = budget;
  config.trace = trace;
  std::unique_ptr<InteractionSession> session = algo.StartSession(config);
  while (true) {
    std::optional<SessionQuestion> q = session->NextQuestion();
    if (!q.has_value()) break;
    std::optional<SessionQuestion> again = session->NextQuestion();
    EXPECT_TRUE(again.has_value()) << "NextQuestion not idempotent";
    if (again.has_value()) {
      EXPECT_EQ(q->pair.i, again->pair.i);
      EXPECT_EQ(q->pair.j, again->pair.j);
      EXPECT_EQ(q->synthetic, again->synthetic);
    }
    EXPECT_FALSE(session->Finished());
    session->PostAnswer(user.Ask(q->first, q->second));
  }
  EXPECT_TRUE(session->Finished());
  InteractionResult result = session->Finish();
  result.converged = result.termination == Termination::kConverged;
  return result;
}

// The five-algorithm roster every equivalence test loops over.
struct Roster {
  Dataset sky;
  Ea ea;
  Aa aa;
  UhRandom uh_random;
  UhSimplex uh_simplex;
  SinglePass single_pass;
  UtilityApprox utility_approx;

  explicit Roster(Dataset dataset)
      : sky(std::move(dataset)),
        ea(sky, EaOpt()),
        aa(sky, AaOpt()),
        uh_random(sky, UhOpt()),
        uh_simplex(sky, UhOpt()),
        single_pass(sky, SpOpt()),
        utility_approx(sky, UaOpt()) {}

  std::vector<InteractiveAlgorithm*> all() {
    return {&ea, &aa, &uh_random, &uh_simplex, &single_pass, &utility_approx};
  }

  static EaOptions EaOpt() {
    EaOptions o;
    o.epsilon = 0.1;
    o.dqn = FastDqn();
    return o;
  }
  static AaOptions AaOpt() {
    AaOptions o;
    o.epsilon = 0.15;
    o.dqn = FastDqn();
    return o;
  }
  static UhOptions UhOpt() {
    UhOptions o;
    o.epsilon = 0.1;
    return o;
  }
  static SinglePassOptions SpOpt() {
    SinglePassOptions o;
    o.epsilon = 0.1;
    return o;
  }
  static UtilityApproxOptions UaOpt() {
    UtilityApproxOptions o;
    o.epsilon = 0.1;
    return o;
  }
};

// ------------------------------------------- stepped == blocking, honest

TEST(SessionEquivalenceTest, SteppedEqualsBlockingForEveryAlgorithm) {
  Roster roster(SmallSkyline(250, 3, 11));
  RunBudget budget;
  budget.max_rounds = 50;
  Rng urng(12);
  for (int trial = 0; trial < 4; ++trial) {
    const Vec u = urng.SimplexUniform(3);
    for (InteractiveAlgorithm* algo : roster.all()) {
      const uint64_t seed = 100 + static_cast<uint64_t>(trial);
      algo->Reseed(seed);
      LinearUser blocking_user(u);
      InteractionResult blocking = algo->Interact(blocking_user, budget);

      algo->Reseed(seed);
      LinearUser stepped_user(u);
      InteractionResult stepped = StepByHand(*algo, stepped_user, budget);
      ExpectSameResult(blocking, stepped, algo->name());
    }
  }
}

// ------------------------------------ stepped == blocking, faulty oracles

TEST(SessionEquivalenceTest, SteppedEqualsBlockingUnderFaultyUsers) {
  Roster roster(SmallSkyline(250, 3, 21));
  RunBudget budget;
  budget.max_rounds = 40;
  Rng urng(22);
  for (int trial = 0; trial < 4; ++trial) {
    const Vec u = urng.SimplexUniform(3);
    FaultyUserOptions fopt;
    fopt.flip_rate = 0.2;
    fopt.no_answer_rate = 0.15;  // exercises the kNoAnswer paths
    fopt.seed = 300 + static_cast<uint64_t>(trial);
    for (InteractiveAlgorithm* algo : roster.all()) {
      const uint64_t seed = 400 + static_cast<uint64_t>(trial);
      algo->Reseed(seed);
      FaultyUser blocking_user(u, fopt);
      InteractionResult blocking = algo->Interact(blocking_user, budget);

      algo->Reseed(seed);
      FaultyUser stepped_user(u, fopt);  // same fault stream, fresh state
      InteractionResult stepped = StepByHand(*algo, stepped_user, budget);
      ExpectSameResult(blocking, stepped, algo->name());
      EXPECT_EQ(blocking_user.flips(), stepped_user.flips()) << algo->name();
    }
  }
}

// --------------------------------------- stepped == blocking, tiny budgets

TEST(SessionEquivalenceTest, SteppedEqualsBlockingUnderExhaustedBudgets) {
  Roster roster(SmallSkyline(300, 4, 31));
  Rng urng(32);
  const Vec u = urng.SimplexUniform(4);
  // 0 is RunBudget's "unset" sentinel: the algorithm's own cap applies.
  for (size_t max_rounds : {0u, 1u, 3u}) {
    RunBudget budget;
    budget.max_rounds = max_rounds;
    for (InteractiveAlgorithm* algo : roster.all()) {
      algo->Reseed(7);
      LinearUser blocking_user(u);
      InteractionResult blocking = algo->Interact(blocking_user, budget);

      algo->Reseed(7);
      LinearUser stepped_user(u);
      InteractionResult stepped = StepByHand(*algo, stepped_user, budget);
      ExpectSameResult(blocking, stepped, algo->name());
      if (max_rounds > 0) EXPECT_LE(stepped.rounds, max_rounds) << algo->name();
      ASSERT_LT(stepped.best_index, roster.sky.size()) << algo->name();
    }
  }
}

// ------------------------------------------------- trace vectors identical

TEST(SessionEquivalenceTest, TraceVectorsMatchBetweenSteppedAndBlocking) {
  Roster roster(SmallSkyline(250, 3, 41));
  RunBudget budget;
  budget.max_rounds = 30;
  Rng urng(42);
  const Vec u = urng.SimplexUniform(3);
  for (InteractiveAlgorithm* algo : roster.all()) {
    algo->Reseed(9);
    Rng blocking_rng(77);
    InteractionTrace blocking_trace(&roster.sky, 16, &blocking_rng);
    LinearUser blocking_user(u);
    InteractionResult blocking =
        algo->Interact(blocking_user, budget, &blocking_trace);

    algo->Reseed(9);
    Rng stepped_rng(77);
    InteractionTrace stepped_trace(&roster.sky, 16, &stepped_rng);
    LinearUser stepped_user(u);
    InteractionResult stepped =
        StepByHand(*algo, stepped_user, budget, &stepped_trace);

    ExpectSameResult(blocking, stepped, algo->name());
    EXPECT_EQ(blocking_trace.max_regret(), stepped_trace.max_regret())
        << algo->name();
    EXPECT_EQ(blocking_trace.best_index(), stepped_trace.best_index())
        << algo->name();
    EXPECT_EQ(blocking_trace.rounds(), stepped_trace.rounds())
        << algo->name();
  }
}

// ------------------------------------------- seeded sessions == Reseed()

// A session with SessionConfig::seed owns a private Rng(seed) — by
// construction the same generator state Reseed(seed) gives the member Rng,
// so the two paths are bit-identical. This is what lets the scheduler run
// many sessions of one algorithm instance concurrently.
TEST(SessionEquivalenceTest, SeededSessionMatchesReseededBlockingRun) {
  Roster roster(SmallSkyline(250, 3, 51));
  RunBudget budget;
  budget.max_rounds = 40;
  Rng urng(52);
  const Vec u = urng.SimplexUniform(3);
  for (InteractiveAlgorithm* algo : roster.all()) {
    const uint64_t seed = 0xABCDu;
    algo->Reseed(seed);
    LinearUser blocking_user(u);
    InteractionResult blocking = algo->Interact(blocking_user, budget);

    algo->Reseed(999);  // clobber the member Rng: the session must not use it
    SessionConfig config;
    config.budget = budget;
    config.seed = seed;
    std::unique_ptr<InteractionSession> session = algo->StartSession(config);
    LinearUser stepped_user(u);
    while (std::optional<SessionQuestion> q = session->NextQuestion()) {
      session->PostAnswer(stepped_user.Ask(q->first, q->second));
    }
    InteractionResult stepped = session->Finish();
    stepped.converged = stepped.termination == Termination::kConverged;
    ExpectSameResult(blocking, stepped, algo->name());
  }
}

// ------------------------------------------------------------------ Cancel

TEST(SessionTest, CancelFinishesWithBestSoFar) {
  Roster roster(SmallSkyline(250, 3, 61));
  RunBudget budget;
  budget.max_rounds = 50;
  for (InteractiveAlgorithm* algo : roster.all()) {
    algo->Reseed(3);
    SessionConfig config;
    config.budget = budget;
    std::unique_ptr<InteractionSession> session = algo->StartSession(config);
    std::optional<SessionQuestion> q = session->NextQuestion();
    if (q.has_value()) {  // tiny datasets may resolve instantly
      session->Cancel();
    }
    EXPECT_TRUE(session->Finished()) << algo->name();
    EXPECT_FALSE(session->NextQuestion().has_value()) << algo->name();
    InteractionResult r = session->Finish();
    ASSERT_LT(r.best_index, roster.sky.size()) << algo->name();
    EXPECT_NE(r.termination, Termination::kConverged) << algo->name();
  }
}

// ------------------------------------------------ scheduler == sequential

TEST(SchedulerTest, CoalescedSessionsMatchSequentialInteract) {
  Roster roster(SmallSkyline(250, 3, 71));
  RunBudget budget;
  budget.max_rounds = 40;
  const size_t kSessions = 8;
  const uint64_t master = 0x5EEDu;
  Rng urng(72);
  std::vector<Vec> utilities;
  for (size_t i = 0; i < kSessions; ++i) {
    utilities.push_back(urng.SimplexUniform(3));
  }

  for (InteractiveAlgorithm* algo : roster.all()) {
    // Sequential reference: the established Evaluate() discipline.
    std::vector<InteractionResult> sequential;
    for (size_t i = 0; i < kSessions; ++i) {
      algo->Reseed(SplitSeed(master, i));
      LinearUser user(utilities[i]);
      sequential.push_back(algo->Interact(user, budget));
    }

    // Scheduler: all sessions in flight at once, scoring coalesced.
    SessionScheduler scheduler;
    std::vector<std::unique_ptr<UserOracle>> owned_users;
    std::vector<UserOracle*> users;
    for (size_t i = 0; i < kSessions; ++i) {
      SessionConfig config;
      config.budget = budget;
      config.seed = SplitSeed(master, i);
      scheduler.Add(algo->StartSession(config));
      owned_users.push_back(std::make_unique<LinearUser>(utilities[i]));
      users.push_back(owned_users.back().get());
    }
    std::vector<InteractionResult> batched =
        DriveWithUsers(scheduler, users);

    ASSERT_EQ(batched.size(), kSessions);
    for (size_t i = 0; i < kSessions; ++i) {
      ExpectSameResult(sequential[i], batched[i],
                       algo->name() + " session " + std::to_string(i));
    }
  }
}

TEST(SchedulerTest, CoalescedSessionsMatchSequentialUnderFaultyUsers) {
  Roster roster(SmallSkyline(250, 3, 81));
  RunBudget budget;
  budget.max_rounds = 30;
  const size_t kSessions = 8;
  const uint64_t master = 0xFAB5u;
  Rng urng(82);
  std::vector<Vec> utilities;
  for (size_t i = 0; i < kSessions; ++i) {
    utilities.push_back(urng.SimplexUniform(3));
  }
  auto fopt_for = [](size_t i) {
    FaultyUserOptions fopt;
    fopt.flip_rate = 0.15;
    fopt.no_answer_rate = 0.1;
    fopt.seed = 500 + static_cast<uint64_t>(i);
    return fopt;
  };

  for (InteractiveAlgorithm* algo :
       std::initializer_list<InteractiveAlgorithm*>{&roster.ea, &roster.aa}) {
    std::vector<InteractionResult> sequential;
    for (size_t i = 0; i < kSessions; ++i) {
      algo->Reseed(SplitSeed(master, i));
      FaultyUser user(utilities[i], fopt_for(i));
      sequential.push_back(algo->Interact(user, budget));
    }

    SessionScheduler scheduler;
    std::vector<std::unique_ptr<UserOracle>> owned_users;
    std::vector<UserOracle*> users;
    for (size_t i = 0; i < kSessions; ++i) {
      SessionConfig config;
      config.budget = budget;
      config.seed = SplitSeed(master, i);
      scheduler.Add(algo->StartSession(config));
      owned_users.push_back(
          std::make_unique<FaultyUser>(utilities[i], fopt_for(i)));
      users.push_back(owned_users.back().get());
    }
    std::vector<InteractionResult> batched =
        DriveWithUsers(scheduler, users);

    for (size_t i = 0; i < kSessions; ++i) {
      ExpectSameResult(sequential[i], batched[i],
                       algo->name() + " session " + std::to_string(i));
    }
  }
}

// Answer arrival order must not change any session's outcome: deliver the
// tick's answers in reverse order and compare against DriveWithUsers.
TEST(SchedulerTest, AnswerOrderWithinATickDoesNotChangeResults) {
  Roster roster(SmallSkyline(250, 3, 91));
  RunBudget budget;
  budget.max_rounds = 30;
  const size_t kSessions = 6;
  const uint64_t master = 0x0DDu;
  Rng urng(92);
  std::vector<Vec> utilities;
  for (size_t i = 0; i < kSessions; ++i) {
    utilities.push_back(urng.SimplexUniform(3));
  }

  auto run = [&](bool reverse) {
    SessionScheduler scheduler;
    std::vector<std::unique_ptr<UserOracle>> users;
    for (size_t i = 0; i < kSessions; ++i) {
      SessionConfig config;
      config.budget = budget;
      config.seed = SplitSeed(master, i);
      scheduler.Add(roster.ea.StartSession(config));
      users.push_back(std::make_unique<LinearUser>(utilities[i]));
    }
    while (scheduler.active() > 0) {
      std::vector<PendingQuestion> pending = scheduler.Tick();
      if (reverse) std::reverse(pending.begin(), pending.end());
      for (const PendingQuestion& pq : pending) {
        scheduler.PostAnswer(pq.session_id,
                             users[pq.session_id]->Ask(pq.question.first,
                                                       pq.question.second));
      }
    }
    std::vector<InteractionResult> results;
    for (size_t i = 0; i < kSessions; ++i) results.push_back(scheduler.Take(i));
    return results;
  };

  std::vector<InteractionResult> forward = run(false);
  std::vector<InteractionResult> backward = run(true);
  for (size_t i = 0; i < kSessions; ++i) {
    ExpectSameResult(forward[i], backward[i],
                     "session " + std::to_string(i));
  }
}

TEST(SchedulerTest, CancelMidFlightAndMixedAlgorithms) {
  Roster roster(SmallSkyline(250, 3, 101));
  RunBudget budget;
  budget.max_rounds = 40;
  SessionScheduler scheduler;
  std::vector<std::unique_ptr<UserOracle>> users;
  Rng urng(102);
  std::vector<InteractiveAlgorithm*> algos = roster.all();
  for (size_t i = 0; i < algos.size(); ++i) {
    SessionConfig config;
    config.budget = budget;
    config.seed = SplitSeed(0xCAFEu, i);
    scheduler.Add(algos[i]->StartSession(config));
    users.push_back(std::make_unique<LinearUser>(urng.SimplexUniform(3)));
  }

  size_t ticks = 0;
  while (scheduler.active() > 0) {
    std::vector<PendingQuestion> pending = scheduler.Tick();
    ++ticks;
    for (const PendingQuestion& pq : pending) {
      if (ticks == 2 && pq.session_id == 0) {
        scheduler.Cancel(pq.session_id);  // user 0 walks away mid-episode
        continue;
      }
      scheduler.PostAnswer(pq.session_id,
                           users[pq.session_id]->Ask(pq.question.first,
                                                     pq.question.second));
    }
  }
  for (size_t i = 0; i < algos.size(); ++i) {
    EXPECT_TRUE(scheduler.finished(i));
    InteractionResult r = scheduler.Take(i);
    ASSERT_LT(r.best_index, roster.sky.size()) << algos[i]->name();
  }
}

// ------------------------------------------------------------ OutcomeCounts

TEST(OutcomeCountsTest, CountsEveryFailureKindAndIgnoresConverged) {
  OutcomeCounts counts;
  counts.Count(Termination::kConverged);
  counts.Count(Termination::kDegraded);
  counts.Count(Termination::kDegraded);
  counts.Count(Termination::kBudgetExhausted);
  counts.Count(Termination::kAborted);
  EXPECT_EQ(counts.degraded, 2u);
  EXPECT_EQ(counts.budget_exhausted, 1u);
  EXPECT_EQ(counts.aborted, 1u);
  EXPECT_EQ(counts.Failures(), 4u);
}

TEST(OutcomeCountsTest, AggregatesInheritTheSharedCounters) {
  // EvalStats and TraceSummary share OutcomeCounts — the members must be
  // reachable exactly as before the deduplication.
  EvalStats stats;
  stats.Count(Termination::kBudgetExhausted);
  EXPECT_EQ(stats.budget_exhausted, 1u);
  EXPECT_EQ(stats.degraded, 0u);

  TraceSummary summary;
  summary.Count(Termination::kAborted);
  summary.Count(Termination::kDegraded);
  EXPECT_EQ(summary.aborted, 1u);
  EXPECT_EQ(summary.degraded, 1u);
  EXPECT_EQ(summary.Failures(), 2u);
}

}  // namespace
}  // namespace isrl
