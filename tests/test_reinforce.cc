// Tests for the REINFORCE policy-gradient agent.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rl/reinforce.h"

namespace isrl::rl {
namespace {

ReinforceOptions SmallOptions() {
  ReinforceOptions o;
  o.hidden_neurons = 16;
  o.learning_rate = 0.02;
  return o;
}

TEST(ReinforceTest, ProbabilitiesSumToOneViaSampling) {
  Rng rng(1);
  ReinforceAgent agent(2, SmallOptions(), rng);
  std::vector<Vec> candidates{Vec{0.1, 0.2}, Vec{0.8, 0.3}, Vec{0.4, 0.9}};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) {
    size_t a = agent.SampleAction(candidates, rng);
    ASSERT_LT(a, 3u);
    counts[a]++;
  }
  // Fresh network ⇒ near-uniform sampling.
  for (int c : counts) EXPECT_GT(c, 500);
}

TEST(ReinforceTest, GreedyPicksHighestScore) {
  Rng rng(2);
  ReinforceAgent agent(1, SmallOptions(), rng);
  std::vector<Vec> candidates{Vec{-0.5}, Vec{0.7}, Vec{0.1}};
  size_t pick = agent.SelectGreedy(candidates);
  double best = agent.Score(candidates[pick]);
  for (const Vec& c : candidates) EXPECT_GE(best, agent.Score(c) - 1e-12);
}

TEST(ReinforceTest, LearnsBanditPreference) {
  // Two candidate features; picking feature +1 yields reward 1, feature −1
  // yields 0. After training, the greedy policy must pick +1 and its
  // sampling probability must dominate.
  Rng rng(3);
  ReinforceAgent agent(1, SmallOptions(), rng);
  std::vector<Vec> candidates{Vec{1.0}, Vec{-1.0}};
  for (int episode = 0; episode < 400; ++episode) {
    PolicyStep step;
    step.candidate_features = candidates;
    step.chosen = agent.SampleAction(candidates, rng);
    step.reward = step.chosen == 0 ? 1.0 : 0.0;
    agent.UpdateFromEpisode({step});
  }
  EXPECT_EQ(agent.SelectGreedy(candidates), 0u);
  int good = 0;
  for (int i = 0; i < 1000; ++i) {
    if (agent.SampleAction(candidates, rng) == 0) ++good;
  }
  EXPECT_GT(good, 750);
}

TEST(ReinforceTest, LearnsTwoStepCredit) {
  // Episode: step 1 chooses between features ±1; choosing +1 leads to a
  // terminal reward of 1 at step 2, choosing −1 to 0. The return must be
  // credited back to step 1's choice.
  Rng rng(4);
  ReinforceOptions opt = SmallOptions();
  opt.gamma = 1.0;
  ReinforceAgent agent(1, opt, rng);
  std::vector<Vec> first{Vec{1.0}, Vec{-1.0}};
  std::vector<Vec> second{Vec{0.5}};
  for (int episode = 0; episode < 500; ++episode) {
    PolicyStep s1;
    s1.candidate_features = first;
    s1.chosen = agent.SampleAction(first, rng);
    s1.reward = 0.0;
    PolicyStep s2;
    s2.candidate_features = second;
    s2.chosen = 0;
    s2.reward = s1.chosen == 0 ? 1.0 : 0.0;
    agent.UpdateFromEpisode({s1, s2});
  }
  EXPECT_EQ(agent.SelectGreedy(first), 0u);
}

TEST(ReinforceTest, BaselineTracksReturns) {
  Rng rng(5);
  ReinforceAgent agent(1, SmallOptions(), rng);
  for (int i = 0; i < 50; ++i) {
    PolicyStep step;
    step.candidate_features = {Vec{0.0}};
    step.chosen = 0;
    step.reward = 4.0;
    agent.UpdateFromEpisode({step});
  }
  EXPECT_NEAR(agent.baseline(), 4.0, 0.5);
}

TEST(ReinforceTest, EmptyEpisodeIsNoOp) {
  Rng rng(6);
  ReinforceAgent agent(1, SmallOptions(), rng);
  EXPECT_EQ(agent.UpdateFromEpisode({}), 0.0);
  EXPECT_EQ(agent.num_updates(), 0u);
}

TEST(ReinforceTest, TemperatureControlsGreediness) {
  Rng rng(7);
  ReinforceOptions hot = SmallOptions();
  hot.temperature = 50.0;  // near-uniform regardless of scores
  ReinforceAgent agent(1, hot, rng);
  // Nudge scores apart by training briefly.
  for (int i = 0; i < 50; ++i) {
    PolicyStep step;
    step.candidate_features = {Vec{1.0}, Vec{-1.0}};
    step.chosen = agent.SampleAction(step.candidate_features, rng);
    step.reward = step.chosen == 0 ? 1.0 : 0.0;
    agent.UpdateFromEpisode({step});
  }
  int first = 0;
  std::vector<Vec> candidates{Vec{1.0}, Vec{-1.0}};
  for (int i = 0; i < 2000; ++i) {
    if (agent.SampleAction(candidates, rng) == 0) ++first;
  }
  // High temperature keeps the policy far from greedy (a converged
  // low-temperature policy would pick the rewarded arm ~2000/2000 times).
  EXPECT_GT(first, 700);
  EXPECT_LT(first, 1600);
}

}  // namespace
}  // namespace isrl::rl
