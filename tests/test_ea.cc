// End-to-end tests for algorithm EA: the exact-guarantee property, training,
// tracing, determinism, and the noisy-user extension.
#include <gtest/gtest.h>

#include "core/ea.h"
#include "core/regret.h"
#include "core/session.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "user/sampler.h"
#include "user/user.h"

namespace isrl {
namespace {

Dataset SmallSkyline(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  Dataset raw = GenerateSynthetic(n, d, Distribution::kAntiCorrelated, rng);
  return SkylineOf(raw);
}

rl::DqnOptions FastDqn() {
  rl::DqnOptions o;
  o.hidden_neurons = 32;
  o.batch_size = 16;
  o.min_replay_before_update = 16;
  return o;
}

TEST(EaTest, UntrainedStillSatisfiesExactGuarantee) {
  // The ε guarantee comes from the terminal certificate, not the policy: an
  // untrained agent must still return a point with regret < ε.
  Dataset sky = SmallSkyline(800, 3, 1);
  EaOptions opt;
  opt.epsilon = 0.1;
  opt.dqn = FastDqn();
  Ea ea(sky, opt);
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    Vec u = rng.SimplexUniform(3);
    LinearUser user(u);
    InteractionResult r = ea.Interact(user);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(RegretRatioAt(sky, r.best_index, u), opt.epsilon);
    EXPECT_EQ(user.questions_asked(), r.rounds);
  }
}

class EaGuaranteeProperty
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(EaGuaranteeProperty, RegretBelowEpsilonAcrossDimsAndEps) {
  auto [d, eps] = GetParam();
  Dataset sky = SmallSkyline(600, d, 10 + d);
  EaOptions opt;
  opt.epsilon = eps;
  opt.dqn = FastDqn();
  Ea ea(sky, opt);
  Rng rng(3);
  auto train = SampleUtilityVectors(10, d, rng);
  ea.Train(train);
  for (int trial = 0; trial < 5; ++trial) {
    Vec u = rng.SimplexUniform(d);
    LinearUser user(u);
    InteractionResult r = ea.Interact(user);
    EXPECT_TRUE(r.converged);
    EXPECT_LT(RegretRatioAt(sky, r.best_index, u), eps) << "d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EaGuaranteeProperty,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(0.05, 0.1,
                                                              0.25)));

TEST(EaTest, TrainingRunsAndReportsStats) {
  Dataset sky = SmallSkyline(500, 3, 4);
  EaOptions opt;
  opt.dqn = FastDqn();
  Ea ea(sky, opt);
  Rng rng(5);
  auto train = SampleUtilityVectors(20, 3, rng);
  TrainStats stats = ea.Train(train);
  EXPECT_EQ(stats.episodes, 20u);
  EXPECT_GT(stats.mean_rounds, 0.0);
  EXPECT_GT(ea.agent().replay().size(), 0u);
  EXPECT_GT(ea.agent().num_updates(), 0u);
}

TEST(EaTest, LargerEpsilonFewerRounds) {
  Dataset sky = SmallSkyline(800, 3, 6);
  Rng rng(7);
  auto train = SampleUtilityVectors(15, 3, rng);
  auto eval = SampleUtilityVectors(15, 3, rng);

  EaOptions tight;
  tight.epsilon = 0.05;
  tight.dqn = FastDqn();
  Ea ea_tight(sky, tight);
  ea_tight.Train(train);
  EvalStats s_tight = Evaluate(ea_tight, sky, eval, 0.05);

  EaOptions loose;
  loose.epsilon = 0.3;
  loose.dqn = FastDqn();
  Ea ea_loose(sky, loose);
  ea_loose.Train(train);
  EvalStats s_loose = Evaluate(ea_loose, sky, eval, 0.3);

  EXPECT_LT(s_loose.mean_rounds, s_tight.mean_rounds);
}

TEST(EaTest, DeterministicGivenSeed) {
  Dataset sky = SmallSkyline(400, 3, 8);
  auto run = [&]() {
    EaOptions opt;
    opt.seed = 123;
    opt.dqn = FastDqn();
    Ea ea(sky, opt);
    Rng rng(9);
    ea.Train(SampleUtilityVectors(5, 3, rng));
    LinearUser user(Vec{0.2, 0.3, 0.5});
    InteractionResult r = ea.Interact(user);
    return std::make_pair(r.rounds, r.best_index);
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(EaTest, TraceRecordsMonotoneTimeAndFinalLowRegret) {
  Dataset sky = SmallSkyline(600, 3, 10);
  EaOptions opt;
  opt.dqn = FastDqn();
  Ea ea(sky, opt);
  Rng rng(11);
  Rng trace_rng(12);
  InteractionTrace trace(&sky, 200, &trace_rng);
  Vec u = rng.SimplexUniform(3);
  LinearUser user(u);
  InteractionResult r = ea.Interact(user, &trace);
  ASSERT_EQ(trace.rounds(), r.rounds);
  for (size_t i = 1; i < trace.rounds(); ++i) {
    EXPECT_GE(trace.cumulative_seconds()[i], trace.cumulative_seconds()[i - 1]);
  }
  if (trace.rounds() > 0) {
    // By the end the worst-case regret over R is below ε (the certificate).
    EXPECT_LT(trace.max_regret().back(), opt.epsilon + 1e-9);
  }
}

TEST(EaTest, RoundsWithinTheoremOneBound) {
  // Theorem 1: O(n) rounds; in practice far below n.
  Dataset sky = SmallSkyline(500, 3, 13);
  EaOptions opt;
  opt.dqn = FastDqn();
  Ea ea(sky, opt);
  Rng rng(14);
  for (int trial = 0; trial < 5; ++trial) {
    LinearUser user(rng.SimplexUniform(3));
    InteractionResult r = ea.Interact(user);
    EXPECT_LE(r.rounds, sky.size());
  }
}

TEST(EaTest, NoisyUserDegradesGracefully) {
  // With mistakes the exact guarantee is void, but EA must terminate and
  // return some point without crashing, even when R collapses.
  Dataset sky = SmallSkyline(500, 3, 15);
  EaOptions opt;
  opt.dqn = FastDqn();
  Ea ea(sky, opt);
  Rng rng(16);
  for (int trial = 0; trial < 5; ++trial) {
    Vec u = rng.SimplexUniform(3);
    NoisyUser user(u, 0.25, rng);
    InteractionResult r = ea.Interact(user);
    EXPECT_LT(r.best_index, sky.size());
    EXPECT_LE(r.rounds, opt.max_rounds);
  }
}

TEST(EaTest, MajorityVoteRecoversAccuracyUnderNoise) {
  Dataset sky = SmallSkyline(500, 3, 17);
  EaOptions opt;
  opt.epsilon = 0.15;
  opt.dqn = FastDqn();
  Ea ea(sky, opt);
  Rng rng(18);
  int ok = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    Vec u = rng.SimplexUniform(3);
    NoisyUser noisy(u, 0.15, rng);
    MajorityVoteUser voter(&noisy, 5);
    InteractionResult r = ea.Interact(voter);
    if (RegretRatioAt(sky, r.best_index, u) < opt.epsilon) ++ok;
  }
  EXPECT_GE(ok, trials / 2);
}

TEST(EaTest, InputDimMatchesStateAndActionFeatures) {
  Dataset sky = SmallSkyline(300, 4, 19);
  EaOptions opt;
  opt.state.m_e = 6;
  opt.dqn = FastDqn();
  Ea ea(sky, opt);
  EXPECT_EQ(ea.input_dim(), 4u * 6 + 4 + 1 + 3 * 4 + Ea::kActionDescriptors);
}

}  // namespace
}  // namespace isrl
