// Unit + property tests for the core primitives: regret ratio, terminal
// polyhedra (Lemmas 4/6), EA state encoding, EA/AA action spaces, AA
// geometry, and the session metrics.
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/aa_actions.h"
#include "core/aa_state.h"
#include "core/ea_actions.h"
#include "core/ea_state.h"
#include "core/metrics.h"
#include "core/regret.h"
#include "core/terminal.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "user/sampler.h"

namespace isrl {
namespace {

Dataset PaperDataset() {
  // Table III of the paper.
  Dataset d(2);
  d.Add(Vec{0.0, 1.0});
  d.Add(Vec{0.3, 0.7});
  d.Add(Vec{0.5, 0.8});
  d.Add(Vec{0.7, 0.4});
  d.Add(Vec{1.0, 0.0});
  return d;
}

// ---------- Regret ratio ----------

TEST(RegretTest, PaperExample2) {
  // regratio(p2, (0.3, 0.7)) = (0.71 − 0.58) / 0.71 ≈ 0.183.
  Dataset d = PaperDataset();
  Vec u{0.3, 0.7};
  EXPECT_NEAR(RegretRatioAt(d, 1, u), (0.71 - 0.58) / 0.71, 1e-9);
}

TEST(RegretTest, TopPointHasZeroRegret) {
  Rng rng(1);
  Dataset d = GenerateSynthetic(100, 3, Distribution::kAntiCorrelated, rng);
  for (int trial = 0; trial < 20; ++trial) {
    Vec u = rng.SimplexUniform(3);
    EXPECT_DOUBLE_EQ(RegretRatioAt(d, d.TopIndex(u), u), 0.0);
  }
}

TEST(RegretTest, AlwaysInUnitInterval) {
  Rng rng(2);
  Dataset d = GenerateSynthetic(100, 4, Distribution::kIndependent, rng);
  for (int trial = 0; trial < 50; ++trial) {
    Vec u = rng.SimplexUniform(4);
    size_t i = static_cast<size_t>(rng.UniformInt(0, 99));
    double r = RegretRatioAt(d, i, u);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(RegretTest, EpsOptimalCertificateMatchesDirectCheck) {
  Rng rng(3);
  Dataset d = GenerateSynthetic(60, 3, Distribution::kAntiCorrelated, rng);
  auto utils = SampleUtilityVectors(30, 3, rng);
  for (size_t p = 0; p < 10; ++p) {
    for (double eps : {0.05, 0.2, 0.5}) {
      bool direct = true;
      for (const Vec& u : utils) {
        if (RegretRatioAt(d, p, u) > eps) {
          direct = false;
          break;
        }
      }
      EXPECT_EQ(IsEpsOptimalForAll(d, d.point(p), utils, eps), direct)
          << "p=" << p << " eps=" << eps;
    }
  }
}

TEST(RegretTest, MaxRegretOverIsMaximum) {
  Rng rng(4);
  Dataset d = GenerateSynthetic(50, 3, Distribution::kIndependent, rng);
  auto utils = SampleUtilityVectors(20, 3, rng);
  Vec p = d.point(7);
  double mx = MaxRegretOver(d, p, utils);
  for (const Vec& u : utils) EXPECT_LE(RegretRatio(d, p, u), mx + 1e-12);
}

// ---------- Terminal polyhedra ----------

TEST(TerminalTest, MembershipMatchesLemma4Inequalities) {
  // u ∈ T_w ⇔ ∀j: u·(p_w − (1−ε)p_j) ≥ 0; check against the direct form.
  Rng rng(5);
  Dataset d = GenerateSynthetic(40, 3, Distribution::kAntiCorrelated, rng);
  const double eps = 0.15;
  for (int trial = 0; trial < 100; ++trial) {
    Vec u = rng.SimplexUniform(3);
    size_t w = static_cast<size_t>(rng.UniformInt(0, 39));
    bool direct = true;
    for (size_t j = 0; j < d.size(); ++j) {
      if (Dot(u, d.point(w) - d.point(j) * (1.0 - eps)) < 0.0) {
        direct = false;
        break;
      }
    }
    EXPECT_EQ(InTerminalPolyhedron(d, w, u, eps), direct);
  }
}

TEST(TerminalTest, MembershipImpliesEpsRegret) {
  // Lemma 4: if u ∈ T_w then regratio(p_w, u) < ε (up to boundary equality).
  Rng rng(6);
  Dataset d = GenerateSynthetic(80, 4, Distribution::kAntiCorrelated, rng);
  const double eps = 0.1;
  int member_count = 0;
  for (int trial = 0; trial < 300; ++trial) {
    Vec u = rng.SimplexUniform(4);
    size_t w = d.TopIndex(u);  // winners are tops of some vector
    if (InTerminalPolyhedron(d, w, u, eps)) {
      ++member_count;
      EXPECT_LE(RegretRatioAt(d, w, u), eps + 1e-12);
    }
  }
  EXPECT_GT(member_count, 0);
}

TEST(TerminalTest, WinnersCoverAllInputVectors) {
  Rng rng(7);
  Dataset d = GenerateSynthetic(60, 3, Distribution::kAntiCorrelated, rng);
  auto utils = SampleUtilityVectors(50, 3, rng);
  const double eps = 0.1;
  auto winners = TerminalWinners(d, utils, eps);
  EXPECT_FALSE(winners.empty());
  for (const Vec& u : utils) {
    bool covered = false;
    for (size_t w : winners) {
      if (InTerminalPolyhedron(d, w, u, eps)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered);
  }
  // Winners are distinct.
  std::set<size_t> uniq(winners.begin(), winners.end());
  EXPECT_EQ(uniq.size(), winners.size());
}

TEST(TerminalTest, LargerEpsilonNeedsNoMoreWinners) {
  Rng rng(8);
  Dataset d = GenerateSynthetic(60, 3, Distribution::kAntiCorrelated, rng);
  auto utils = SampleUtilityVectors(50, 3, rng);
  auto small = TerminalWinners(d, utils, 0.05);
  auto large = TerminalWinners(d, utils, 0.3);
  EXPECT_LE(large.size(), small.size());
}

TEST(TerminalTest, TerminalRangeReturnsEpsOptimalWinner) {
  // On a tiny utility range every vector shares a near-top point.
  Dataset d = PaperDataset();
  std::vector<Vec> tight{Vec{0.29, 0.71}, Vec{0.31, 0.69}, Vec{0.30, 0.70}};
  size_t winner = 99;
  ASSERT_TRUE(IsTerminalRange(d, tight, 0.1, &winner));
  for (const Vec& u : tight) EXPECT_LE(RegretRatioAt(d, winner, u), 0.1);
}

TEST(TerminalTest, WholeSimplexNotTerminalForSmallEps) {
  Dataset d = PaperDataset();
  std::vector<Vec> corners{Vec{1.0, 0.0}, Vec{0.0, 1.0}};
  size_t winner;
  EXPECT_FALSE(IsTerminalRange(d, corners, 0.05, &winner));
}

// ---------- EA state ----------

TEST(EaStateTest, CoverageSelectionPicksDenseRepresentative) {
  // Example 5 of the paper: the vector covering the most neighbours first.
  std::vector<Vec> vecs{Vec{0.00, 1.00}, Vec{0.02, 0.98}, Vec{0.04, 0.96},
                        Vec{0.5, 0.5},  Vec{1.0, 0.0}};
  auto picked = SelectRepresentativeVertices(vecs, 1, 0.05);
  ASSERT_EQ(picked.size(), 1u);
  // Only the middle of the dense cluster covers all 3 cluster vectors
  // (endpoint-to-endpoint distance ≈ 0.057 > 0.05).
  EXPECT_TRUE(ApproxEqual(picked[0], Vec{0.02, 0.98}, 1e-12));
}

TEST(EaStateTest, CoverageStopsWhenAllCovered) {
  std::vector<Vec> vecs{Vec{0.5, 0.5}, Vec{0.51, 0.49}};
  auto picked = SelectRepresentativeVertices(vecs, 5, 0.1);
  EXPECT_EQ(picked.size(), 1u);  // one vector covers both
}

TEST(EaStateTest, SelectionBoundedByMe) {
  Rng rng(9);
  std::vector<Vec> vecs;
  for (int i = 0; i < 30; ++i) vecs.push_back(rng.SimplexUniform(3));
  auto picked = SelectRepresentativeVertices(vecs, 4, 1e-6);
  EXPECT_EQ(picked.size(), 4u);
}

TEST(EaStateTest, EncodedStateDimensionFixed) {
  EaStateOptions opt;
  opt.m_e = 3;
  for (size_t d = 2; d <= 5; ++d) {
    Polyhedron p = Polyhedron::UnitSimplex(d);
    Vec s = EncodeEaState(p, opt);
    EXPECT_EQ(s.dim(), EaStateDim(d, opt));
    EXPECT_EQ(s.dim(), d * 3 + d + 1);
  }
}

TEST(EaStateTest, OuterSphereComponentCoversVertices) {
  EaStateOptions opt;
  Polyhedron p = Polyhedron::UnitSimplex(3);
  p.Cut(Halfspace{Vec{1.0, -1.0, 0.0}, 0.0});
  Vec s = EncodeEaState(p, opt);
  const size_t d = 3;
  Vec center{s[d * opt.m_e], s[d * opt.m_e + 1], s[d * opt.m_e + 2]};
  double radius = s[s.dim() - 1];
  for (const Vec& v : p.vertices()) {
    EXPECT_LE(Distance(center, v), radius + 1e-6);
  }
}

TEST(EaStateTest, StateShrinksWithRange) {
  // Cutting the range must not grow the outer-sphere radius.
  EaStateOptions opt;
  Polyhedron p = Polyhedron::UnitSimplex(4);
  Vec before = EncodeEaState(p, opt);
  p.Cut(Halfspace{Vec{1.0, -1.0, 0.0, 0.0}, 0.0});
  p.Cut(Halfspace{Vec{0.0, 1.0, -1.0, 0.0}, 0.0});
  Vec after = EncodeEaState(p, opt);
  EXPECT_LE(after[after.dim() - 1], before[before.dim() - 1] + 1e-9);
}

// ---------- EA actions ----------

TEST(EaActionsTest, ActionsAreWinnerPairs) {
  Rng rng(10);
  Dataset raw = GenerateSynthetic(500, 3, Distribution::kAntiCorrelated, rng);
  Dataset d = SkylineOf(raw);
  Polyhedron range = Polyhedron::UnitSimplex(3);
  EaActionOptions opt;
  EaActionSpace space = BuildEaActionSpace(d, range, 0.05, opt, rng);
  ASSERT_GT(space.winners.size(), 1u);
  EXPECT_LE(space.actions.size(), opt.m_h);
  EXPECT_FALSE(space.actions.empty());
  std::set<size_t> winner_set(space.winners.begin(), space.winners.end());
  for (const EaAction& action : space.actions) {
    const Question& q = action.q;
    EXPECT_NE(q.i, q.j);
    EXPECT_TRUE(winner_set.count(q.i));
    EXPECT_TRUE(winner_set.count(q.j));
  }
}

TEST(EaActionsTest, Lemma7ActionsStrictlyNarrow) {
  // Both sides of every action's hyper-plane must intersect R: some vertex
  // or sample strictly on each side.
  Rng rng(11);
  Dataset raw = GenerateSynthetic(500, 3, Distribution::kAntiCorrelated, rng);
  Dataset d = SkylineOf(raw);
  Polyhedron range = Polyhedron::UnitSimplex(3);
  EaActionOptions opt;
  opt.num_samples = 200;
  EaActionSpace space = BuildEaActionSpace(d, range, 0.05, opt, rng);
  for (const EaAction& action : space.actions) {
    const Question& q = action.q;
    Halfspace h = PreferenceHalfspace(d.point(q.i), d.point(q.j));
    bool pos = false, neg = false;
    for (int s = 0; s < 500; ++s) {
      double m = h.Margin(range.SampleInterior(rng));
      if (m > 0) pos = true;
      if (m < 0) neg = true;
      if (pos && neg) break;
    }
    EXPECT_TRUE(pos && neg) << "action does not split R";
  }
}

TEST(EaActionsTest, SingleWinnerOnTinyRange) {
  Rng rng(12);
  Dataset raw = GenerateSynthetic(300, 3, Distribution::kAntiCorrelated, rng);
  Dataset d = SkylineOf(raw);
  // Shrink R to a sliver around one utility vector.
  Polyhedron range = Polyhedron::UnitSimplex(3);
  Vec u = rng.SimplexUniform(3);
  for (int i = 0; i < 40 && !range.IsEmpty(); ++i) {
    Vec a = rng.SimplexUniform(3);
    Halfspace h{u - a, 0.0};
    if (h.normal.Norm() < 1e-9) continue;
    Polyhedron copy = range;
    copy.Cut(h);
    if (!copy.IsEmpty()) range = copy;
  }
  EaActionSpace space = BuildEaActionSpace(d, range, 0.3, EaActionOptions{}, rng);
  EXPECT_LE(space.winners.size(), 2u);  // big ε + small R ⇒ few winners
}

// ---------- AA geometry ----------

TEST(AaGeometryTest, EmptyHGivesFullSimplexRect) {
  AaGeometry geo = ComputeAaGeometry(3, {});
  ASSERT_TRUE(geo.feasible);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(geo.e_min[i], 0.0, 1e-7);
    EXPECT_NEAR(geo.e_max[i], 1.0, 1e-7);
  }
  // Inner sphere centred at the barycentre with radius 1/d.
  EXPECT_NEAR(geo.inner.center.Sum(), 1.0, 1e-7);
  EXPECT_GT(geo.inner.radius, 0.0);
}

TEST(AaGeometryTest, InnerSphereCenterSatisfiesAllHalfspaces) {
  Rng rng(13);
  Dataset d = GenerateSynthetic(50, 4, Distribution::kAntiCorrelated, rng);
  std::vector<LearnedHalfspace> h;
  Vec u = rng.SimplexUniform(4);
  for (int i = 0; i < 6; ++i) {
    size_t a = static_cast<size_t>(rng.UniformInt(0, 49));
    size_t b = static_cast<size_t>(rng.UniformInt(0, 49));
    if (a == b) continue;
    bool pref = Dot(u, d.point(a)) >= Dot(u, d.point(b));
    LearnedHalfspace lh;
    lh.winner = pref ? a : b;
    lh.loser = pref ? b : a;
    lh.h = PreferenceHalfspace(d.point(lh.winner), d.point(lh.loser));
    h.push_back(lh);
  }
  AaGeometry geo = ComputeAaGeometry(4, h);
  ASSERT_TRUE(geo.feasible);
  for (const LearnedHalfspace& lh : h) {
    EXPECT_TRUE(lh.h.Contains(geo.inner.center, 1e-6));
  }
  EXPECT_NEAR(geo.inner.center.Sum(), 1.0, 1e-7);
}

TEST(AaGeometryTest, RectContainsTrueUtilityVector) {
  // The answers come from u, so u stays inside the learned rectangle.
  Rng rng(14);
  Dataset d = GenerateSynthetic(80, 3, Distribution::kAntiCorrelated, rng);
  Vec u = rng.SimplexUniform(3);
  std::vector<LearnedHalfspace> h;
  for (int i = 0; i < 10; ++i) {
    size_t a = static_cast<size_t>(rng.UniformInt(0, 79));
    size_t b = static_cast<size_t>(rng.UniformInt(0, 79));
    if (a == b) continue;
    bool pref = Dot(u, d.point(a)) >= Dot(u, d.point(b));
    LearnedHalfspace lh;
    lh.winner = pref ? a : b;
    lh.loser = pref ? b : a;
    lh.h = PreferenceHalfspace(d.point(lh.winner), d.point(lh.loser));
    h.push_back(lh);
    AaGeometry geo = ComputeAaGeometry(3, h);
    ASSERT_TRUE(geo.feasible);
    for (size_t k = 0; k < 3; ++k) {
      EXPECT_LE(geo.e_min[k], u[k] + 1e-6);
      EXPECT_GE(geo.e_max[k], u[k] - 1e-6);
    }
  }
}

TEST(AaGeometryTest, RectShrinksMonotonically) {
  Rng rng(15);
  Dataset d = GenerateSynthetic(80, 3, Distribution::kAntiCorrelated, rng);
  Vec u = rng.SimplexUniform(3);
  std::vector<LearnedHalfspace> h;
  double prev = std::sqrt(3.0);
  for (int i = 0; i < 8; ++i) {
    size_t a = static_cast<size_t>(rng.UniformInt(0, 79));
    size_t b = static_cast<size_t>(rng.UniformInt(0, 79));
    if (a == b) continue;
    bool pref = Dot(u, d.point(a)) >= Dot(u, d.point(b));
    LearnedHalfspace lh;
    lh.winner = pref ? a : b;
    lh.loser = pref ? b : a;
    lh.h = PreferenceHalfspace(d.point(lh.winner), d.point(lh.loser));
    h.push_back(lh);
    AaGeometry geo = ComputeAaGeometry(3, h);
    ASSERT_TRUE(geo.feasible);
    double dist = Distance(geo.e_min, geo.e_max);
    EXPECT_LE(dist, prev + 1e-6);
    prev = dist;
  }
}

TEST(AaGeometryTest, InfeasibleHDetected) {
  // Contradictory half-spaces: u0 > u1 and u1 > u0 strictly via two pairs.
  std::vector<LearnedHalfspace> h;
  LearnedHalfspace a;
  a.h = Halfspace{Vec{1.0, -1.0}, 0.3};  // u0 − u1 ≥ 0.3
  h.push_back(a);
  LearnedHalfspace b;
  b.h = Halfspace{Vec{-1.0, 1.0}, 0.3};  // u1 − u0 ≥ 0.3
  h.push_back(b);
  AaGeometry geo = ComputeAaGeometry(2, h);
  EXPECT_FALSE(geo.feasible);
}

TEST(AaGeometryTest, FeasibilityMarginSigns) {
  std::vector<LearnedHalfspace> h;
  // Candidate u0 ≥ u1 on the free simplex: strictly feasible.
  EXPECT_GT(FeasibilityMargin(2, h, Halfspace{Vec{1.0, -1.0}, 0.0}), 1e-6);
  // Candidate that excludes the whole simplex: infeasible.
  EXPECT_LE(FeasibilityMargin(2, h, Halfspace{Vec{-1.0, -1.0}, 0.0}), 1e-9);
}

TEST(AaGeometryTest, EncodedStateLayout) {
  AaGeometry geo = ComputeAaGeometry(3, {});
  Vec s = EncodeAaState(geo);
  EXPECT_EQ(s.dim(), AaStateDim(3));
  EXPECT_EQ(s.dim(), 10u);
  // Layout: center(3), radius(1), e_min(3), e_max(3).
  EXPECT_NEAR(s[0] + s[1] + s[2], 1.0, 1e-7);
  EXPECT_GT(s[3], 0.0);
}

// ---------- AA actions ----------

TEST(AaActionsTest, ActionsSplitTheRange) {
  Rng rng(16);
  Dataset raw = GenerateSynthetic(500, 4, Distribution::kAntiCorrelated, rng);
  Dataset d = SkylineOf(raw);
  std::vector<LearnedHalfspace> h;
  AaGeometry geo = ComputeAaGeometry(4, h);
  AaActionOptions opt;
  auto actions = BuildAaActionSpace(d, h, geo, opt, rng);
  ASSERT_FALSE(actions.empty());
  EXPECT_LE(actions.size(), opt.m_h);
  for (const AaAction& action : actions) {
    const Question& q = action.q;
    EXPECT_NE(q.i, q.j);
    EXPECT_GT(action.balance, 0.0);
    EXPECT_LT(action.balance, 1.0);
    // Lemma 8: both sides feasible (checked via the LP margin).
    Halfspace f = PreferenceHalfspace(d.point(q.i), d.point(q.j));
    EXPECT_GT(FeasibilityMargin(4, h, f), 0.0);
    EXPECT_GT(FeasibilityMargin(4, h, f.Flipped()), 0.0);
  }
}

// ---------- Metrics ----------

TEST(MetricsTest, SummarizeBasics) {
  Summary s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_EQ(s.count, 4u);
  Summary empty = Summarize({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(empty.mean, 0.0);
}

}  // namespace
}  // namespace isrl
