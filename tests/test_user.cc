// Unit tests for user simulation: linear/noisy oracles, majority voting,
// and utility-vector samplers.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "user/sampler.h"
#include "user/user.h"

namespace isrl {
namespace {

TEST(LinearUserTest, AnswersByUtility) {
  LinearUser user(Vec{0.3, 0.7});
  EXPECT_TRUE(user.Prefers(Vec{0.5, 0.8}, Vec{0.3, 0.7}));   // 0.71 vs 0.58
  EXPECT_FALSE(user.Prefers(Vec{1.0, 0.0}, Vec{0.0, 1.0}));  // 0.30 vs 0.70
}

TEST(LinearUserTest, PaperTableIIIExample) {
  // u = (0.3, 0.7): p3 = (0.5, 0.8) is the favourite.
  LinearUser user(Vec{0.3, 0.7});
  std::vector<Vec> points{Vec{0.0, 1.0}, Vec{0.3, 0.7}, Vec{0.5, 0.8},
                          Vec{0.7, 0.4}, Vec{1.0, 0.0}};
  for (const Vec& p : points) {
    EXPECT_TRUE(user.Prefers(points[2], p));
  }
}

TEST(LinearUserTest, TiesPreferFirst) {
  LinearUser user(Vec{0.5, 0.5});
  EXPECT_TRUE(user.Prefers(Vec{0.4, 0.6}, Vec{0.6, 0.4}));
  EXPECT_TRUE(user.Prefers(Vec{0.6, 0.4}, Vec{0.4, 0.6}));
}

TEST(LinearUserTest, CountsQuestions) {
  LinearUser user(Vec{0.5, 0.5});
  EXPECT_EQ(user.questions_asked(), 0u);
  user.Prefers(Vec{1.0, 0.0}, Vec{0.0, 1.0});
  user.Prefers(Vec{1.0, 0.0}, Vec{0.0, 1.0});
  EXPECT_EQ(user.questions_asked(), 2u);
  user.ResetQuestionCount();
  EXPECT_EQ(user.questions_asked(), 0u);
}

TEST(LinearUserDeathTest, RejectsInvalidUtility) {
  EXPECT_DEATH(LinearUser(Vec{0.5, 0.6}), "ISRL_CHECK");   // sum ≠ 1
  EXPECT_DEATH(LinearUser(Vec{-0.2, 1.2}), "ISRL_CHECK");  // negative weight
}

TEST(NoisyUserTest, ZeroNoiseMatchesLinear) {
  Rng rng(1);
  NoisyUser noisy(Vec{0.3, 0.7}, 0.0, rng);
  LinearUser exact(Vec{0.3, 0.7});
  for (int i = 0; i < 50; ++i) {
    Vec a{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    Vec b{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    EXPECT_EQ(noisy.Prefers(a, b), exact.Prefers(a, b));
  }
}

TEST(NoisyUserTest, FlipRateApproximatelyMatches) {
  Rng rng(2);
  const double rate = 0.2;
  NoisyUser noisy(Vec{0.3, 0.7}, rate, rng);
  LinearUser exact(Vec{0.3, 0.7});
  int flips = 0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    Vec a{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    Vec b{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    if (noisy.Prefers(a, b) != exact.Prefers(a, b)) ++flips;
  }
  EXPECT_NEAR(static_cast<double>(flips) / trials, rate, 0.03);
}

TEST(NoisyUserDeathTest, RejectsErrorRateAboveHalf) {
  Rng rng(3);
  EXPECT_DEATH(NoisyUser(Vec{0.5, 0.5}, 0.6, rng), "ISRL_CHECK");
}

TEST(MajorityVoteTest, ReducesEffectiveErrorRate) {
  Rng rng(4);
  NoisyUser noisy(Vec{0.3, 0.7}, 0.25, rng);
  MajorityVoteUser voter(&noisy, 5);
  LinearUser exact(Vec{0.3, 0.7});
  int errors = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    Vec a{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    Vec b{rng.Uniform(0, 1), rng.Uniform(0, 1)};
    if (voter.Prefers(a, b) != exact.Prefers(a, b)) ++errors;
  }
  // 5-vote majority with p=0.25 error ≈ 0.10 effective error.
  EXPECT_LT(static_cast<double>(errors) / trials, 0.15);
}

TEST(MajorityVoteDeathTest, RequiresOddVotes) {
  Rng rng(5);
  NoisyUser noisy(Vec{0.5, 0.5}, 0.1, rng);
  EXPECT_DEATH(MajorityVoteUser(&noisy, 4), "ISRL_CHECK");
}

TEST(SamplerTest, UniformVectorsOnSimplex) {
  Rng rng(6);
  auto vs = SampleUtilityVectors(100, 5, rng);
  ASSERT_EQ(vs.size(), 100u);
  for (const Vec& u : vs) {
    EXPECT_EQ(u.dim(), 5u);
    EXPECT_NEAR(u.Sum(), 1.0, 1e-12);
    for (size_t i = 0; i < 5; ++i) EXPECT_GE(u[i], 0.0);
  }
}

TEST(SamplerTest, SkewedVectorsFavorHeavyCoordinate) {
  Rng rng(7);
  auto vs = SampleSkewedUtilityVectors(500, 4, 2, 8.0, rng);
  double mean_heavy = 0.0, mean_other = 0.0;
  for (const Vec& u : vs) {
    EXPECT_NEAR(u.Sum(), 1.0, 1e-12);
    mean_heavy += u[2];
    mean_other += (u[0] + u[1] + u[3]) / 3.0;
  }
  EXPECT_GT(mean_heavy / vs.size(), 2.0 * mean_other / vs.size());
}

}  // namespace
}  // namespace isrl
