// Tests for the extended user models and the polytope volume estimator,
// including the empirical Lemma 5 property (larger terminal polyhedra catch
// more samples).
#include <cmath>

#include <gtest/gtest.h>

#include "core/ea.h"
#include "core/regret.h"
#include "core/terminal.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "geometry/volume.h"
#include "user/models.h"
#include "user/sampler.h"

namespace isrl {
namespace {

// ---------- Volume estimator ----------

TEST(VolumeTest, WholeSimplexIsOne) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(SimplexFractionVolume(3, {}, 2000, rng), 1.0);
}

TEST(VolumeTest, MatchesExactSegmentFraction) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Halfspace> cuts;
    for (int c = 0; c < 3; ++c) {
      Vec a = rng.SimplexUniform(2), b = rng.SimplexUniform(2);
      cuts.push_back(Halfspace{a - b, 0.0});
    }
    double exact = ExactSegmentFraction(cuts);
    double estimate = SimplexFractionVolume(2, cuts, 20000, rng);
    EXPECT_NEAR(estimate, exact, 0.02) << "trial " << trial;
  }
}

TEST(VolumeTest, HalfCutGivesHalfVolume) {
  // u0 ≥ u1 splits the simplex exactly in half by symmetry (any d).
  Rng rng(3);
  for (size_t d : {2, 3, 5}) {
    Vec normal(d);
    normal[0] = 1.0;
    normal[1] = -1.0;
    double v = SimplexFractionVolume(d, {Halfspace{normal, 0.0}}, 20000, rng);
    EXPECT_NEAR(v, 0.5, 0.02) << "d=" << d;
  }
}

TEST(VolumeTest, NestedCutsMonotone) {
  Rng rng(4);
  std::vector<Halfspace> cuts;
  double prev = 1.0;
  for (int c = 0; c < 4; ++c) {
    Vec a = rng.SimplexUniform(3), b = rng.SimplexUniform(3);
    cuts.push_back(Halfspace{a - b, 0.0});
    Rng fixed(99);  // same sample stream each round: strict nesting
    double v = SimplexFractionVolume(3, cuts, 8000, fixed);
    EXPECT_LE(v, prev + 1e-12);
    prev = v;
  }
}

TEST(VolumeTest, Lemma5LargerTerminalPolyhedraCatchMoreSamples) {
  // Construct terminal polyhedra over a sampled V and check that the winner
  // whose polyhedron has the larger measured volume covers at least as many
  // of V's vectors — the mechanism Lemma 5's bound formalises.
  Rng rng(5);
  Dataset sky =
      SkylineOf(GenerateSynthetic(800, 3, Distribution::kAntiCorrelated, rng));
  const double eps = 0.08;
  auto v_set = SampleUtilityVectors(600, 3, rng);
  auto winners = TerminalWinners(sky, v_set, eps);
  if (winners.size() < 2) GTEST_SKIP() << "dataset too easy at this epsilon";

  std::vector<double> volumes, coverage;
  for (size_t w : winners) {
    // T_w as half-spaces: p_w − (1−ε)p_j for all j.
    std::vector<Halfspace> cuts;
    for (size_t j = 0; j < sky.size(); ++j) {
      if (j == w) continue;
      cuts.push_back(EpsilonHalfspace(sky.point(w), sky.point(j), eps));
    }
    Rng vol_rng(123);
    volumes.push_back(SimplexFractionVolume(3, cuts, 4000, vol_rng));
    size_t covered = 0;
    for (const Vec& u : v_set) {
      if (InTerminalPolyhedron(sky, w, u, eps)) ++covered;
    }
    coverage.push_back(static_cast<double>(covered));
  }
  // Rank correlation between volume and coverage should be positive: check
  // the max-volume winner is within the top half by coverage.
  size_t max_vol_idx = 0;
  for (size_t i = 1; i < volumes.size(); ++i) {
    if (volumes[i] > volumes[max_vol_idx]) max_vol_idx = i;
  }
  size_t better = 0;
  for (double c : coverage) {
    if (c > coverage[max_vol_idx]) ++better;
  }
  EXPECT_LE(better, coverage.size() / 2);
}

// ---------- Extended user models ----------

TEST(BoundedErrorUserTest, ClearComparisonsAlwaysCorrect) {
  Rng rng(6);
  BoundedErrorUser user(Vec{0.5, 0.5}, /*error_rate=*/1.0, /*margin=*/0.05,
                        rng);
  // Utility gap far above 5%: never flipped even at error rate 1.
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(user.Prefers(Vec{0.9, 0.9}, Vec{0.1, 0.1}));
    EXPECT_FALSE(user.Prefers(Vec{0.1, 0.1}, Vec{0.9, 0.9}));
  }
}

TEST(BoundedErrorUserTest, CloseCallsCanFlip) {
  Rng rng(7);
  BoundedErrorUser user(Vec{0.5, 0.5}, 0.5, 0.1, rng);
  int flips = 0;
  for (int i = 0; i < 2000; ++i) {
    // Gap ≈ 1%: inside the error margin.
    if (!user.Prefers(Vec{0.505, 0.505}, Vec{0.5, 0.5})) ++flips;
  }
  EXPECT_NEAR(static_cast<double>(flips) / 2000.0, 0.5, 0.06);
}

TEST(IndifferentUserTest, FirstOptionOnTies) {
  IndifferentUser user(Vec{0.5, 0.5}, 0.05);
  // 1% apart: indifferent → first option, both ways round.
  EXPECT_TRUE(user.Prefers(Vec{0.5, 0.5}, Vec{0.505, 0.505}));
  EXPECT_TRUE(user.Prefers(Vec{0.505, 0.505}, Vec{0.5, 0.5}));
  // 50% apart: truthful.
  EXPECT_FALSE(user.Prefers(Vec{0.3, 0.3}, Vec{0.9, 0.9}));
}

TEST(DriftingUserTest, UtilityStaysOnSimplex) {
  Rng rng(8);
  DriftingUser user(Vec{0.3, 0.3, 0.4}, 0.05, rng);
  for (int i = 0; i < 200; ++i) {
    user.Prefers(Vec{0.5, 0.2, 0.3}, Vec{0.1, 0.8, 0.1});
    const Vec& u = user.current_utility();
    EXPECT_NEAR(u.Sum(), 1.0, 1e-9);
    for (size_t c = 0; c < 3; ++c) EXPECT_GE(u[c], 0.0);
  }
}

TEST(DriftingUserTest, ZeroDriftIsStationary) {
  Rng rng(9);
  DriftingUser user(Vec{0.3, 0.7}, 0.0, rng);
  Vec before = user.current_utility();
  for (int i = 0; i < 20; ++i) user.Prefers(Vec{1.0, 0.0}, Vec{0.0, 1.0});
  EXPECT_TRUE(ApproxEqual(user.current_utility(), before, 1e-12));
}

TEST(ExtendedModelsIntegration, EaSurvivesAllModels) {
  Rng rng(10);
  Dataset sky =
      SkylineOf(GenerateSynthetic(600, 3, Distribution::kAntiCorrelated, rng));
  EaOptions opt;
  opt.epsilon = 0.15;
  Ea ea(sky, opt);

  {
    BoundedErrorUser user(rng.SimplexUniform(3), 0.3, 0.05, rng);
    InteractionResult r = ea.Interact(user);
    EXPECT_LT(r.best_index, sky.size());
  }
  {
    IndifferentUser user(rng.SimplexUniform(3), 0.03);
    InteractionResult r = ea.Interact(user);
    EXPECT_LT(r.best_index, sky.size());
  }
  {
    DriftingUser user(rng.SimplexUniform(3), 0.01, rng);
    InteractionResult r = ea.Interact(user);
    EXPECT_LT(r.best_index, sky.size());
    // Against the *final* preference the answer should still be decent.
    EXPECT_LT(RegretRatioAt(sky, r.best_index, user.current_utility()), 0.7);
  }
}

}  // namespace
}  // namespace isrl
