// Tests for the invariant-audit layer (src/audit/): configuration parsing,
// the auditor's sampling/recording machinery, each checker against a clean
// structure and against seeded corruptions, and an end-to-end interaction
// run under ISRL_AUDIT=1 that must come back violation-free.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audit/audit.h"
#include "audit/checkers.h"
#include "baselines/uh_random.h"
#include "common/rng.h"
#include "common/vec.h"
#include "core/aa.h"
#include "core/aa_state.h"
#include "core/ea.h"
#include "core/session.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "geometry/enclosing_ball.h"
#include "geometry/halfspace.h"
#include "geometry/polyhedron.h"
#include "nn/network.h"
#include "rl/prioritized_replay.h"
#include "user/sampler.h"

namespace isrl::audit {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------------
// ParseAuditConfig.
// ---------------------------------------------------------------------------

TEST(AuditConfigTest, UnsetAndEmptyDisable) {
  EXPECT_FALSE(ParseAuditConfig(nullptr).enabled);
  EXPECT_FALSE(ParseAuditConfig("").enabled);
  EXPECT_FALSE(ParseAuditConfig("0").enabled);
  EXPECT_FALSE(ParseAuditConfig("off").enabled);
  EXPECT_FALSE(ParseAuditConfig("false").enabled);
}

TEST(AuditConfigTest, SimpleEnable) {
  for (const char* v : {"1", "on", "true"}) {
    AuditConfig c = ParseAuditConfig(v);
    EXPECT_TRUE(c.enabled) << v;
    EXPECT_EQ(c.sample_every, 1u) << v;
    EXPECT_FALSE(c.abort_on_violation) << v;
  }
}

TEST(AuditConfigTest, SampleStride) {
  AuditConfig c = ParseAuditConfig("sample=16");
  EXPECT_TRUE(c.enabled);
  EXPECT_EQ(c.sample_every, 16u);
  // A bare integer is shorthand for sample=N.
  c = ParseAuditConfig("8");
  EXPECT_TRUE(c.enabled);
  EXPECT_EQ(c.sample_every, 8u);
}

TEST(AuditConfigTest, CombinedTokens) {
  AuditConfig c = ParseAuditConfig("sample=4,abort,quiet");
  EXPECT_TRUE(c.enabled);
  EXPECT_EQ(c.sample_every, 4u);
  EXPECT_TRUE(c.abort_on_violation);
  EXPECT_FALSE(c.log_to_stderr);
}

TEST(AuditConfigTest, MalformedDisablesAndReports) {
  // A typo must not silently run as "audited".
  std::string error;
  AuditConfig c = ParseAuditConfig("sample=banana", &error);
  EXPECT_FALSE(c.enabled);
  EXPECT_NE(error.find("sample=banana"), std::string::npos);

  error.clear();
  c = ParseAuditConfig("1,garbage", &error);
  EXPECT_FALSE(c.enabled);
  EXPECT_FALSE(error.empty());

  EXPECT_FALSE(ParseAuditConfig("sample=0").enabled);  // stride 0 is invalid
}

// ---------------------------------------------------------------------------
// InvariantAuditor machinery.
// ---------------------------------------------------------------------------

class AuditorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = Auditor().config();
    Auditor().Reset();
  }
  void TearDown() override {
    Auditor().Configure(saved_);
    Auditor().Reset();
  }
  AuditConfig saved_;
};

AuditConfig QuietEnabled() {
  AuditConfig c;
  c.enabled = true;
  c.log_to_stderr = false;
  return c;
}

TEST_F(AuditorFixture, DisabledHooksNeverFire) {
  AuditConfig off;
  off.enabled = false;
  Auditor().Configure(off);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(Auditor().ShouldCheck(Checker::kLpTableau));
  }
  EXPECT_EQ(Auditor().Snapshot().total_checks, 0u);
}

TEST_F(AuditorFixture, SamplingStrideRunsEveryNth) {
  AuditConfig c = QuietEnabled();
  c.sample_every = 4;
  Auditor().Configure(c);
  int fired = 0;
  for (int i = 0; i < 16; ++i) {
    if (Auditor().ShouldCheck(Checker::kPolyhedron)) ++fired;
  }
  EXPECT_EQ(fired, 4);
}

TEST_F(AuditorFixture, RecordAggregatesPerChecker) {
  Auditor().Configure(QuietEnabled());
  Auditor().Record(Checker::kLpTableau, "test.site", {});
  Auditor().Record(Checker::kLpTableau, "test.site", {"bad tableau"});
  Auditor().Record(Checker::kNnFinite, "test.site", {"nan", "inf"});

  AuditReport report = Auditor().Snapshot();
  EXPECT_EQ(report.total_checks, 3u);
  EXPECT_EQ(report.total_violations, 3u);
  EXPECT_FALSE(report.clean());
  const auto& lp = report.per_checker[static_cast<size_t>(Checker::kLpTableau)];
  EXPECT_EQ(lp.checks, 2u);
  EXPECT_EQ(lp.violations, 1u);
  ASSERT_EQ(report.violations.size(), 3u);
  EXPECT_EQ(report.violations[0].site, "test.site");
  EXPECT_EQ(report.violations[0].message, "bad tableau");
  // The summary names the failing checkers and the stored messages.
  std::string text = report.ToString();
  EXPECT_NE(text.find("lp_tableau"), std::string::npos);
  EXPECT_NE(text.find("bad tableau"), std::string::npos);
}

TEST_F(AuditorFixture, ResetClearsCountersButKeepsConfig) {
  AuditConfig c = QuietEnabled();
  c.sample_every = 2;
  Auditor().Configure(c);
  Auditor().Record(Checker::kReplayTree, "s", {"x"});
  Auditor().Reset();
  AuditReport report = Auditor().Snapshot();
  EXPECT_EQ(report.total_checks, 0u);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(Auditor().config().sample_every, 2u);
}

// ---------------------------------------------------------------------------
// Checker: simplex tableau.
// ---------------------------------------------------------------------------

// A canonical clean tableau: 2 structural columns, 2 basic slacks.
struct TableauFixture {
  std::vector<std::vector<double>> rows{{1.0, 2.0, 1.0, 0.0},
                                        {3.0, 1.0, 0.0, 1.0}};
  std::vector<double> rhs{4.0, 6.0};
  std::vector<size_t> basis{2, 3};
  std::vector<double> cost{1.0, 1.0, 0.0, 0.0};

  TableauView View() {
    TableauView v;
    v.rows = &rows;
    v.rhs = &rhs;
    v.basis = &basis;
    v.cost = &cost;
    v.num_cols = 4;
    v.first_artificial = 4;  // no artificials
    v.phase = 2;
    return v;
  }
};

TEST(CheckSimplexTableauTest, CleanTableauPasses) {
  TableauFixture t;
  EXPECT_TRUE(CheckSimplexTableau(t.View()).empty());
}

TEST(CheckSimplexTableauTest, NegativeRhsCaught) {
  TableauFixture t;
  t.rhs[0] = -0.5;
  auto problems = CheckSimplexTableau(t.View());
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("infeasibility"), std::string::npos);
}

TEST(CheckSimplexTableauTest, DuplicateBasisCaught) {
  TableauFixture t;
  t.basis[1] = 2;  // column 2 basic in both rows
  EXPECT_FALSE(CheckSimplexTableau(t.View()).empty());
}

TEST(CheckSimplexTableauTest, OutOfRangeBasisCaught) {
  TableauFixture t;
  t.basis[0] = 9;
  auto problems = CheckSimplexTableau(t.View());
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("out of range"), std::string::npos);
}

TEST(CheckSimplexTableauTest, NonUnitBasisColumnCaught) {
  TableauFixture t;
  t.rows[1][2] = 0.25;  // basis column 2 now has a second non-zero
  auto problems = CheckSimplexTableau(t.View());
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("not unit"), std::string::npos);
}

TEST(CheckSimplexTableauTest, NonFiniteRhsCaught) {
  TableauFixture t;
  t.rhs[1] = kNan;
  EXPECT_FALSE(CheckSimplexTableau(t.View()).empty());
}

TEST(CheckSimplexTableauTest, BasicArtificialInPhase2Caught) {
  TableauFixture t;
  TableauView v = t.View();
  v.first_artificial = 3;  // column 3 is now an artificial, basic at 6.0
  auto problems = CheckSimplexTableau(v);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("artificial"), std::string::npos);

  // A neutralised redundant row (artificial basic at ~0) is legal.
  t.rhs[1] = 0.0;
  EXPECT_TRUE(CheckSimplexTableau(v).empty());
}

// ---------------------------------------------------------------------------
// Checker: polyhedron vertices and cut monotonicity.
// ---------------------------------------------------------------------------

TEST(CheckPolyhedronTest, SimplexCornersPass) {
  std::vector<Vec> vertices{Vec{1.0, 0.0}, Vec{0.0, 1.0}};
  EXPECT_TRUE(CheckPolyhedronVertices(2, {}, vertices, 1e-9).empty());
}

TEST(CheckPolyhedronTest, OffSimplexVertexCaught) {
  std::vector<Vec> vertices{Vec{0.7, 0.7}};  // sums to 1.4
  auto problems = CheckPolyhedronVertices(2, {}, vertices, 1e-9);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("sum"), std::string::npos);
}

TEST(CheckPolyhedronTest, NegativeCoordinateCaught) {
  std::vector<Vec> vertices{Vec{-0.1, 1.1}};
  EXPECT_FALSE(CheckPolyhedronVertices(2, {}, vertices, 1e-9).empty());
}

TEST(CheckPolyhedronTest, CutViolationCaught) {
  // Cut u0 ≥ u1; the vertex (0, 1) is on the wrong side.
  std::vector<Halfspace> cuts{Halfspace{Vec{1.0, -1.0}, 0.0}};
  std::vector<Vec> vertices{Vec{0.0, 1.0}};
  auto problems = CheckPolyhedronVertices(2, cuts, vertices, 1e-9);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("cut"), std::string::npos);

  // The vertex (1, 0) satisfies the cut.
  vertices[0] = Vec{1.0, 0.0};
  EXPECT_TRUE(CheckPolyhedronVertices(2, cuts, vertices, 1e-9).empty());
}

TEST(CheckPolyhedronTest, NonFiniteVertexCaught) {
  std::vector<Vec> vertices{Vec{kNan, 1.0}};
  EXPECT_FALSE(CheckPolyhedronVertices(2, {}, vertices, 1e-9).empty());
}

TEST(CheckCutMonotonicityTest, GrowthCaughtShrinkPasses) {
  EXPECT_TRUE(CheckCutMonotonicity(1.0, 0.6, 1e-7).empty());
  EXPECT_TRUE(CheckCutMonotonicity(1.0, 1.0, 1e-7).empty());
  auto problems = CheckCutMonotonicity(1.0, 1.1, 1e-7);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("grew"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Checker: polyhedron vertex–facet adjacency (DESIGN.md §17).
// ---------------------------------------------------------------------------

// A real incrementally-maintained polyhedron: the unit simplex in R³ after
// one generic preference cut, with adjacency tracked. The corruption tests
// below copy its (cuts, vertices, facets) triple and break one invariant.
class CheckAdjacencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    poly_ = std::make_unique<Polyhedron>(Polyhedron::UnitSimplex(3));
    poly_->Cut(PreferenceHalfspace(Vec{0.8, 0.3, 0.1}, Vec{0.2, 0.5, 0.6}));
    ASSERT_TRUE(poly_->adjacency_valid());
    cuts_ = poly_->cuts();
    vertices_ = poly_->vertices();
    facets_ = poly_->vertex_facets();
  }

  std::vector<std::string> Check() const {
    return CheckPolyhedronAdjacency(3, cuts_, vertices_, facets_, 1e-7);
  }

  std::unique_ptr<Polyhedron> poly_;
  std::vector<Halfspace> cuts_;
  std::vector<Vec> vertices_;
  std::vector<std::vector<uint32_t>> facets_;
};

TEST_F(CheckAdjacencyTest, LiveAdjacencyPasses) {
  EXPECT_TRUE(Check().empty());
}

TEST_F(CheckAdjacencyTest, SizeMismatchCaught) {
  facets_.pop_back();
  auto problems = Check();
  ASSERT_FALSE(problems.empty());
}

TEST_F(CheckAdjacencyTest, WrongFacetCountCaught) {
  facets_[0].push_back(1);  // d−1 = 2 expected, now 3
  EXPECT_FALSE(Check().empty());
}

TEST_F(CheckAdjacencyTest, OutOfRangeFacetCaught) {
  // Constraint indices run over d nonnegativity rows + cuts.size() cuts.
  facets_[0].back() = static_cast<uint32_t>(3 + cuts_.size());
  EXPECT_FALSE(Check().empty());
}

TEST_F(CheckAdjacencyTest, UnsortedFacetSetCaught) {
  ASSERT_GE(facets_[0].size(), 2u);
  std::swap(facets_[0][0], facets_[0][1]);
  EXPECT_FALSE(Check().empty());
}

TEST_F(CheckAdjacencyTest, NonTightFacetCaught) {
  // Claim vertex 0 is tight on a constraint it is strictly slack on: its
  // true facet sets stay distinct from vertex 1's, but the margin check
  // must fire. Find a constraint not in vertex 0's set with nonzero margin.
  const std::vector<uint32_t>& f0 = facets_[0];
  for (uint32_t idx = 0; idx < static_cast<uint32_t>(3 + cuts_.size());
       ++idx) {
    if (std::find(f0.begin(), f0.end(), idx) != f0.end()) continue;
    double margin = idx < 3 ? vertices_[0][idx]
                            : cuts_[idx - 3].Margin(vertices_[0]);
    if (std::abs(margin) > 1e-3) {
      facets_[0] = {std::min(idx, f0[0]), std::max(idx, f0[0])};
      auto problems = Check();
      ASSERT_FALSE(problems.empty());
      return;
    }
  }
  FAIL() << "no strictly-slack constraint found to corrupt with";
}

TEST_F(CheckAdjacencyTest, DuplicateFacetSetsCaught) {
  facets_[1] = facets_[0];
  EXPECT_FALSE(Check().empty());
}

TEST_F(CheckAdjacencyTest, DanglingEdgeCaught) {
  // Dropping a vertex (and its facet set) leaves each of its edges with a
  // single endpoint — the completeness certificate that catches a lost
  // vertex must fire.
  vertices_.pop_back();
  facets_.pop_back();
  auto problems = Check();
  ASSERT_FALSE(problems.empty());
}

// ---------------------------------------------------------------------------
// Checker: warm-start basis consistency.
// ---------------------------------------------------------------------------

TEST(CheckWarmStartBasisTest, WellFormedBasisPasses) {
  // 3 rows over 8 columns, artificials from column 6.
  EXPECT_TRUE(CheckWarmStartBasis({0, 4, 5}, 3, 8, 6).empty());
}

TEST(CheckWarmStartBasisTest, RowCountMismatchCaught) {
  auto problems = CheckWarmStartBasis({0, 4}, 3, 8, 6);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("rows"), std::string::npos);
}

TEST(CheckWarmStartBasisTest, OutOfRangeColumnCaught) {
  EXPECT_FALSE(CheckWarmStartBasis({0, 4, 9}, 3, 8, 6).empty());
}

TEST(CheckWarmStartBasisTest, ArtificialColumnCaught) {
  auto problems = CheckWarmStartBasis({0, 4, 6}, 3, 8, 6);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("artificial"), std::string::npos);
}

TEST(CheckWarmStartBasisTest, DuplicateColumnCaught) {
  auto problems = CheckWarmStartBasis({4, 0, 4}, 3, 8, 6);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("repeated"), std::string::npos);
}

TEST(CheckWarmStartBasisTest, IncoherentFingerprintCaught) {
  // first_artificial beyond num_cols is a corrupt fingerprint even when the
  // basis entries themselves look fine.
  EXPECT_FALSE(CheckWarmStartBasis({0, 1, 2}, 3, 4, 9).empty());
}

// ---------------------------------------------------------------------------
// Checker: enclosing balls.
// ---------------------------------------------------------------------------

std::vector<Vec> BallPoints() {
  Rng rng(42);
  std::vector<Vec> points;
  for (int i = 0; i < 20; ++i) {
    Vec p(3);
    for (size_t c = 0; c < 3; ++c) p[c] = rng.Uniform();
    points.push_back(p);
  }
  return points;
}

TEST(CheckBallTest, ComputedBallsPass) {
  std::vector<Vec> points = BallPoints();
  EXPECT_TRUE(
      CheckBallEncloses(IterativeOuterBall(points), points, 1e-7).empty());
  Rng rng(7);
  EXPECT_TRUE(
      CheckBallEncloses(WelzlMinimumBall(points, rng), points, 1e-7).empty());
}

TEST(CheckBallTest, ShrunkenRadiusCaught) {
  std::vector<Vec> points = BallPoints();
  Ball ball = IterativeOuterBall(points);
  ball.radius *= 0.5;
  auto problems = CheckBallEncloses(ball, points, 1e-7);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("outside"), std::string::npos);
}

TEST(CheckBallTest, CorruptBallCaught) {
  Ball ball;
  ball.center = Vec{kNan, 0.0};
  EXPECT_FALSE(CheckBallEncloses(ball, {}, 1e-7).empty());
  ball.center = Vec{0.0, 0.0};
  ball.radius = -1.0;
  EXPECT_FALSE(CheckBallEncloses(ball, {}, 1e-7).empty());
}

// ---------------------------------------------------------------------------
// Checker: network finiteness and target-sync epoch.
// ---------------------------------------------------------------------------

TEST(CheckNetworkTest, FreshMlpPassesNanParameterCaught) {
  Rng rng(3);
  nn::Network net = nn::Network::Mlp({4, 8, 1}, nn::Activation::kSelu, rng);
  EXPECT_TRUE(CheckNetworkFinite(net, "main").empty());
  EXPECT_TRUE(CheckFiniteVec(net.Forward(Vec(4, 0.5)), "output").empty());

  (*net.Params()[0].values)[0] = kNan;
  auto problems = CheckNetworkFinite(net, "main");
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("parameter"), std::string::npos);
}

TEST(CheckNetworkTest, NanGradientCaught) {
  Rng rng(3);
  nn::Network net = nn::Network::Mlp({4, 8, 1}, nn::Activation::kSelu, rng);
  (*net.Params()[1].grads)[0] = kNan;
  auto problems = CheckNetworkFinite(net, "target");
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("gradient"), std::string::npos);
}

TEST(CheckTargetSyncTest, OnlySyncBoundariesAreAsserted) {
  Rng rng(5);
  nn::Network main_net = nn::Network::Mlp({3, 4, 1}, nn::Activation::kRelu, rng);
  nn::Network target = nn::Network::Mlp({3, 4, 1}, nn::Activation::kRelu, rng);
  // Off-boundary (7 % 4 != 0): divergence is expected, no claim to check.
  EXPECT_TRUE(CheckTargetSyncEpoch(7, 4, main_net, target).empty());
  // On a boundary the target must be a bit-exact copy.
  EXPECT_FALSE(CheckTargetSyncEpoch(8, 4, main_net, target).empty());
  target.CopyParamsFrom(main_net);
  EXPECT_TRUE(CheckTargetSyncEpoch(8, 4, main_net, target).empty());
}

// ---------------------------------------------------------------------------
// Checker: replay segment tree.
// ---------------------------------------------------------------------------

TEST(CheckReplayTreeTest, LiveMemoryPasses) {
  rl::PrioritizedReplayMemory mem(8);
  Rng rng(11);
  for (int i = 0; i < 12; ++i) {  // wraps the ring
    rl::Transition t;
    t.state_action = Vec{static_cast<double>(i)};
    t.reward = i;
    mem.Add(std::move(t));
    if (!mem.empty()) {
      auto batch = mem.Sample(2, rng);
      for (auto& s : batch) mem.UpdatePriority(s, 0.1 * (i + 1));
    }
    EXPECT_TRUE(CheckReplayTree(mem, 1e-9).empty()) << "after add " << i;
  }
}

TEST(CheckReplayTreeTest, CorruptedAggregatesCaught) {
  const std::vector<double> leaves{1.0, 2.0, 0.5};
  EXPECT_TRUE(CheckReplayTreeRaw(leaves, 3.5, 0.5, 1e-9).empty());

  auto problems = CheckReplayTreeRaw(leaves, 3.0, 0.5, 1e-9);  // stale sum
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("total"), std::string::npos);

  problems = CheckReplayTreeRaw(leaves, 3.5, 1.0, 1e-9);  // stale min
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("min"), std::string::npos);
}

TEST(CheckReplayTreeTest, NonPositiveLeafCaught) {
  EXPECT_FALSE(CheckReplayTreeRaw({1.0, 0.0}, 1.0, 0.0, 1e-9).empty());
  EXPECT_FALSE(CheckReplayTreeRaw({1.0, kNan}, 1.0, 1.0, 1e-9).empty());
}

// ---------------------------------------------------------------------------
// Checker: AA geometry.
// ---------------------------------------------------------------------------

TEST(CheckAaGeometryTest, ComputedGeometryPasses) {
  // The empty-H geometry of the unit simplex, straight from the LPs.
  AaGeometry geo = ComputeAaGeometry(3, {});
  ASSERT_TRUE(geo.feasible);
  EXPECT_TRUE(CheckAaGeometry(geo, {}, 1e-6).empty());
}

TEST(CheckAaGeometryTest, SeededCorruptionsCaught) {
  AaGeometry geo = ComputeAaGeometry(3, {});
  ASSERT_TRUE(geo.feasible);

  AaGeometry bad = geo;
  bad.inner.radius = -0.2;
  EXPECT_FALSE(CheckAaGeometry(bad, {}, 1e-6).empty());

  bad = geo;
  std::swap(bad.e_min, bad.e_max);  // inverted rectangle
  EXPECT_FALSE(CheckAaGeometry(bad, {}, 1e-6).empty());

  bad = geo;
  bad.inner.center[0] = bad.e_max[0] + 1.0;  // centre escapes the rectangle
  EXPECT_FALSE(CheckAaGeometry(bad, {}, 1e-6).empty());

  bad = geo;
  bad.e_min[1] = kNan;
  EXPECT_FALSE(CheckAaGeometry(bad, {}, 1e-6).empty());

  // A half-space the centre violates.
  LearnedHalfspace lh;
  lh.h = Halfspace{Vec{-1.0, -1.0, -1.0}, 0.0};  // requires Σu ≤ 0
  auto problems = CheckAaGeometry(geo, {lh}, 1e-6);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("half-space"), std::string::npos);

  // Infeasible geometry makes no claims, so corruption is not reported.
  bad = geo;
  bad.feasible = false;
  bad.inner.radius = -5.0;
  EXPECT_TRUE(CheckAaGeometry(bad, {}, 1e-6).empty());
}

// ---------------------------------------------------------------------------
// End to end: EA / AA / UH-Random under ISRL_AUDIT=1 must run clean.
// ---------------------------------------------------------------------------

class AuditEndToEndTest : public AuditorFixture {
 protected:
  void SetUp() override {
    AuditorFixture::SetUp();
    ASSERT_EQ(setenv("ISRL_AUDIT", "1,quiet", /*overwrite=*/1), 0);
    Auditor().ConfigureFromEnvironment();
  }
  void TearDown() override {
    unsetenv("ISRL_AUDIT");
    AuditorFixture::TearDown();
  }
};

TEST_F(AuditEndToEndTest, InteractionsRunWithZeroViolations) {
  Rng rng(200);
  Dataset raw = GenerateSynthetic(400, 3, Distribution::kIndependent, rng);
  Dataset sky = SkylineOf(raw);
  std::vector<Vec> train = SampleUtilityVectors(6, 3, rng);
  std::vector<Vec> eval = SampleUtilityVectors(4, 3, rng);
  const double eps = 0.15;

  EaOptions eopt;
  eopt.epsilon = eps;
  Ea ea(sky, eopt);
  ea.Train(train);

  AaOptions aopt;
  aopt.epsilon = eps;
  Aa aa(sky, aopt);
  aa.Train(train);

  UhOptions uopt;
  uopt.epsilon = eps;
  UhRandom uhr(sky, uopt);

  for (InteractiveAlgorithm* algo :
       std::vector<InteractiveAlgorithm*>{&ea, &aa, &uhr}) {
    EvalStats s = Evaluate(*algo, sky, eval, eps);
    EXPECT_GT(s.mean_rounds, 0.0) << algo->name();
  }

  AuditReport report = Auditor().Snapshot();
  // The hooks actually fired: training + evaluation exercises the LP, the
  // polyhedron, the balls, and the networks.
  EXPECT_GT(report.total_checks, 0u);
  const auto checks_of = [&](Checker c) {
    return report.per_checker[static_cast<size_t>(c)].checks;
  };
  EXPECT_GT(checks_of(Checker::kLpTableau), 0u);
  EXPECT_GT(checks_of(Checker::kPolyhedron), 0u);
  EXPECT_GT(checks_of(Checker::kEnclosingBall), 0u);
  EXPECT_GT(checks_of(Checker::kNnFinite), 0u);
  EXPECT_GT(checks_of(Checker::kAaGeometry), 0u);
  // ... and every invariant held.
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST_F(AuditEndToEndTest, PrioritizedReplayHookFires) {
  Rng rng(201);
  Dataset raw = GenerateSynthetic(200, 3, Distribution::kIndependent, rng);
  Dataset sky = SkylineOf(raw);
  std::vector<Vec> train = SampleUtilityVectors(4, 3, rng);

  EaOptions eopt;
  eopt.epsilon = 0.15;
  eopt.dqn.prioritized_replay = true;
  // Small-scale run: episodes are only a few rounds long here, so lower the
  // replay warm-up until updates (and with them the hook) actually happen.
  eopt.dqn.min_replay_before_update = 2;
  eopt.dqn.batch_size = 2;
  Ea ea(sky, eopt);
  ea.Train(train);

  AuditReport report = Auditor().Snapshot();
  EXPECT_GT(
      report.per_checker[static_cast<size_t>(Checker::kReplayTree)].checks,
      0u);
  EXPECT_TRUE(report.clean()) << report.ToString();
}

}  // namespace
}  // namespace isrl::audit
