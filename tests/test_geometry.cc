// Unit + property tests for the geometry substrate: half-spaces, the utility
// range polyhedron (vertex enumeration), enclosing balls, convex-hull
// extremeness, and hit-and-run sampling.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/convex_hull.h"
#include "geometry/enclosing_ball.h"
#include "geometry/halfspace.h"
#include "geometry/hit_and_run.h"
#include "geometry/polyhedron.h"

namespace isrl {
namespace {

// ---------- Halfspace ----------

TEST(HalfspaceTest, PreferenceHalfspaceContainsAgreeingVectors) {
  Vec pi{0.8, 0.2};
  Vec pj{0.2, 0.8};
  Halfspace h = PreferenceHalfspace(pi, pj);
  // Utility weighting dim 0 prefers pi: must be inside.
  EXPECT_TRUE(h.Contains(Vec{0.9, 0.1}));
  EXPECT_FALSE(h.Contains(Vec{0.1, 0.9}));
  // On the hyper-plane: contained up to tolerance (Lemma 1 boundary).
  EXPECT_TRUE(h.Contains(Vec{0.5, 0.5}, 1e-9));
}

TEST(HalfspaceTest, FlippedIsComplement) {
  Halfspace h{Vec{1.0, -1.0}, 0.0};
  Halfspace f = h.Flipped();
  Vec inside{0.9, 0.1};
  EXPECT_TRUE(h.Contains(inside));
  EXPECT_FALSE(f.Contains(inside));
  EXPECT_DOUBLE_EQ(h.Margin(inside), -f.Margin(inside));
}

TEST(HalfspaceTest, EpsilonHalfspaceLooserThanStrict) {
  // εh contains everything h_{i,j} contains (for points in the positive
  // orthant) plus an ε-band on the other side.
  Vec pi{0.5, 0.5};
  Vec pj{0.6, 0.4};
  Halfspace strict = PreferenceHalfspace(pi, pj);
  Halfspace relaxed = EpsilonHalfspace(pi, pj, 0.2);
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    Vec u = rng.SimplexUniform(2);
    if (strict.Contains(u, 0.0)) {
      EXPECT_TRUE(relaxed.Contains(u, 1e-12));
    }
  }
}

TEST(HalfspaceTest, DistanceToHyperplane) {
  Halfspace h{Vec{1.0, 0.0}, 0.0};  // plane x = 0
  EXPECT_NEAR(DistanceToHyperplane(Vec{3.0, 7.0}, h), 3.0, 1e-12);
  Halfspace diag{Vec{1.0, 1.0}, 1.0};  // plane x + y = 1
  EXPECT_NEAR(DistanceToHyperplane(Vec{1.0, 1.0}, diag), 1.0 / std::sqrt(2.0),
              1e-12);
}

// ---------- Polyhedron ----------

TEST(PolyhedronTest, UnitSimplexVertices) {
  for (size_t d = 2; d <= 6; ++d) {
    Polyhedron p = Polyhedron::UnitSimplex(d);
    ASSERT_EQ(p.vertices().size(), d);
    // Every vertex is a coordinate unit vector.
    for (const Vec& v : p.vertices()) {
      EXPECT_NEAR(v.Sum(), 1.0, 1e-9);
      EXPECT_NEAR(v.Max(), 1.0, 1e-9);
    }
  }
}

TEST(PolyhedronTest, CutHalvesTriangle) {
  // Cut the 2-simplex with u[0] ≥ u[1]: vertices (1,0), (.5,.5).
  Polyhedron p = Polyhedron::UnitSimplex(2);
  p.Cut(Halfspace{Vec{1.0, -1.0}, 0.0});
  ASSERT_EQ(p.vertices().size(), 2u);
  bool has_corner = false, has_mid = false;
  for (const Vec& v : p.vertices()) {
    if (ApproxEqual(v, Vec{1.0, 0.0}, 1e-8)) has_corner = true;
    if (ApproxEqual(v, Vec{0.5, 0.5}, 1e-8)) has_mid = true;
  }
  EXPECT_TRUE(has_corner);
  EXPECT_TRUE(has_mid);
}

TEST(PolyhedronTest, RedundantCutDropped) {
  Polyhedron p = Polyhedron::UnitSimplex(3);
  // u[0] ≥ -1 holds everywhere on the simplex: must not be retained.
  p.Cut(Halfspace{Vec{1.0, 0.0, 0.0}, -1.0});
  EXPECT_TRUE(p.cuts().empty());
  EXPECT_EQ(p.vertices().size(), 3u);
}

TEST(PolyhedronTest, InfeasibleCutEmptiesRange) {
  Polyhedron p = Polyhedron::UnitSimplex(3);
  p.Cut(Halfspace{Vec{1.0, 1.0, 1.0}, 2.0});  // Σu ≥ 2 impossible
  EXPECT_TRUE(p.IsEmpty());
}

TEST(PolyhedronTest, ContainsChecksEverything) {
  Polyhedron p = Polyhedron::UnitSimplex(3);
  p.Cut(Halfspace{Vec{1.0, -1.0, 0.0}, 0.0});  // u0 ≥ u1
  EXPECT_TRUE(p.Contains(Vec{0.5, 0.2, 0.3}));
  EXPECT_FALSE(p.Contains(Vec{0.2, 0.5, 0.3}));   // violates cut
  EXPECT_FALSE(p.Contains(Vec{0.6, 0.2, 0.1}));   // sum ≠ 1
  EXPECT_FALSE(p.Contains(Vec{1.2, -0.1, -0.1})); // negative coord
}

TEST(PolyhedronTest, CentroidInsideRange) {
  Rng rng(3);
  Polyhedron p = Polyhedron::UnitSimplex(4);
  for (int i = 0; i < 5; ++i) {
    Vec a = rng.SimplexUniform(4), b = rng.SimplexUniform(4);
    Polyhedron copy = p;
    copy.Cut(Halfspace{a - b, 0.0});
    if (copy.IsEmpty()) continue;
    p = copy;
    EXPECT_TRUE(p.Contains(p.Centroid(), 1e-7));
  }
}

TEST(PolyhedronTest, SampleInteriorStaysInside) {
  Rng rng(4);
  Polyhedron p = Polyhedron::UnitSimplex(3);
  p.Cut(Halfspace{Vec{1.0, -1.0, 0.0}, 0.0});
  p.Cut(Halfspace{Vec{0.0, 1.0, -1.0}, 0.0});
  ASSERT_FALSE(p.IsEmpty());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(p.Contains(p.SampleInterior(rng), 1e-7));
  }
}

TEST(PolyhedronTest, DiameterOfSimplex) {
  Polyhedron p = Polyhedron::UnitSimplex(2);
  EXPECT_NEAR(p.Diameter(), std::sqrt(2.0), 1e-9);
}

TEST(PolyhedronTest, CutsShrinkDiameterMonotonically) {
  Rng rng(5);
  Polyhedron p = Polyhedron::UnitSimplex(4);
  double prev = p.Diameter();
  for (int i = 0; i < 8; ++i) {
    Vec a = rng.SimplexUniform(4), b = rng.SimplexUniform(4);
    Polyhedron copy = p;
    copy.Cut(Halfspace{a - b, 0.0});
    if (copy.IsEmpty()) continue;
    p = copy;
    double cur = p.Diameter();
    EXPECT_LE(cur, prev + 1e-9);
    prev = cur;
  }
}

// Property: vertex enumeration agrees with membership — every enumerated
// vertex is contained; and cutting preserves exactly the vertices that
// satisfy the new half-space.
class PolyhedronCutProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(PolyhedronCutProperty, VerticesConsistentUnderRandomCuts) {
  const size_t d = GetParam();
  Rng rng(40 + d);
  Polyhedron p = Polyhedron::UnitSimplex(d);
  for (int round = 0; round < 6; ++round) {
    Vec a = rng.SimplexUniform(d), b = rng.SimplexUniform(d);
    Halfspace h{a - b, 0.0};
    std::vector<Vec> surviving;
    for (const Vec& v : p.vertices()) {
      if (h.Contains(v, 1e-9)) surviving.push_back(v);
    }
    Polyhedron next = p;
    next.Cut(h);
    if (next.IsEmpty()) break;
    // All enumerated vertices satisfy every constraint.
    for (const Vec& v : next.vertices()) {
      EXPECT_TRUE(next.Contains(v, 1e-6));
      EXPECT_TRUE(p.Contains(v, 1e-6));  // nested ranges
    }
    // Old vertices inside the cut must still be vertices of the new range.
    for (const Vec& v : surviving) {
      bool found = false;
      for (const Vec& w : next.vertices()) {
        if (ApproxEqual(v, w, 1e-6)) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found);
    }
    p = next;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, PolyhedronCutProperty,
                         ::testing::Values(2, 3, 4, 5));

// ---------- Incremental adjacency maintenance (DESIGN.md §17) ----------

Polyhedron RebuildSimplex(size_t d) {
  Polyhedron::Options opts;
  opts.incremental = false;
  return Polyhedron::UnitSimplex(d, opts);
}

void ExpectBitIdentical(const Polyhedron& a, const Polyhedron& b) {
  ASSERT_EQ(a.vertices().size(), b.vertices().size());
  for (size_t i = 0; i < a.vertices().size(); ++i) {
    for (size_t c = 0; c < a.dim(); ++c) {
      ASSERT_EQ(a.vertices()[i][c], b.vertices()[i][c])
          << "vertex " << i << " coord " << c;
    }
  }
  ASSERT_EQ(a.cuts().size(), b.cuts().size());
  for (size_t j = 0; j < a.cuts().size(); ++j) {
    ASSERT_EQ(a.cuts()[j].offset, b.cuts()[j].offset);
    for (size_t c = 0; c < a.dim(); ++c) {
      ASSERT_EQ(a.cuts()[j].normal[c], b.cuts()[j].normal[c]);
    }
  }
}

// Preference cut between two hypercube-uniform items — the production EA
// geometry (src/data/synthetic.cc draws item coordinates from U[0,1], so cut
// normals have no common zero and the arrangement is generic).
Halfspace RandomItemCut(Rng& rng, size_t d) {
  Vec a(d), b(d);
  for (size_t c = 0; c < d; ++c) {
    a[c] = rng.Uniform(0.0, 1.0);
    b[c] = rng.Uniform(0.0, 1.0);
  }
  return PreferenceHalfspace(a, b);
}

class PolyhedronIncrementalProperty : public ::testing::TestWithParam<size_t> {
};

// The contract of the incremental path: the vertex sequence after every cut
// is bit-identical to the seed full re-enumeration, in value AND order.
TEST_P(PolyhedronIncrementalProperty, BitIdenticalToRebuildUnderRandomCuts) {
  const size_t d = GetParam();
  Rng rng(90 + d);
  Polyhedron incremental = Polyhedron::UnitSimplex(d);
  Polyhedron rebuild = RebuildSimplex(d);
  EXPECT_TRUE(incremental.adjacency_valid());
  EXPECT_FALSE(rebuild.adjacency_valid());
  for (int round = 0; round < 12; ++round) {
    Halfspace h = RandomItemCut(rng, d);
    const bool ok_inc = incremental.TryCut(h);
    const bool ok_ref = rebuild.TryCut(h);
    ASSERT_EQ(ok_inc, ok_ref) << "round " << round;
    ExpectBitIdentical(incremental, rebuild);
  }
  // In generic position the certified structure must survive the whole run —
  // otherwise the fast path silently degraded to permanent re-enumeration.
  EXPECT_TRUE(incremental.adjacency_valid());
}

INSTANTIATE_TEST_SUITE_P(Dims, PolyhedronIncrementalProperty,
                         ::testing::Values(2, 3, 4, 5, 6));

// Simplex-point differences are the adversarial case: every such cut passes
// through the barycenter (Σ normal = 0 with offset 0), so once the
// barycenter reaches R's boundary the polytope is genuinely degenerate
// there — many subsets resolve to the same point. The incremental path must
// refuse the certificate and degrade to the seed enumeration, bit-identical.
TEST(PolyhedronIncrementalTest, CentralArrangementDegradesBitIdentical) {
  for (size_t d = 3; d <= 5; ++d) {
    Rng rng(90 + d);
    Polyhedron incremental = Polyhedron::UnitSimplex(d);
    Polyhedron rebuild = RebuildSimplex(d);
    for (int round = 0; round < 8; ++round) {
      Vec a = rng.SimplexUniform(d), b = rng.SimplexUniform(d);
      Halfspace h{a - b, 0.0};
      ASSERT_EQ(incremental.TryCut(h), rebuild.TryCut(h))
          << "d " << d << " round " << round;
      ExpectBitIdentical(incremental, rebuild);
    }
  }
}

// A repeated (duplicate) cut is degenerate input: every boundary vertex lies
// inside the guard band of the copy, so the incremental path must refuse and
// fall back — and the result must still match the seed path bitwise.
TEST(PolyhedronIncrementalTest, DuplicateCutFallsBackBitIdentical) {
  Rng rng(123);
  Polyhedron incremental = Polyhedron::UnitSimplex(3);
  Polyhedron rebuild = RebuildSimplex(3);
  Halfspace h = RandomItemCut(rng, 3);
  incremental.Cut(h);
  rebuild.Cut(h);
  ExpectBitIdentical(incremental, rebuild);
  incremental.Cut(h);  // exact duplicate: tight at the new boundary vertices
  rebuild.Cut(h);
  ExpectBitIdentical(incremental, rebuild);
}

// TryCut that rejects an emptying cut must restore the adjacency structure
// along with the vertex set, and later cuts must still match the seed path.
TEST(PolyhedronIncrementalTest, TryCutRejectionRestoresAdjacency) {
  Rng rng(321);
  Polyhedron incremental = Polyhedron::UnitSimplex(4);
  Polyhedron rebuild = RebuildSimplex(4);
  Halfspace h = RandomItemCut(rng, 4);
  incremental.Cut(h);
  rebuild.Cut(h);
  const bool was_valid = incremental.adjacency_valid();
  EXPECT_TRUE(was_valid);
  // Σu = 1 everywhere, so normal −1 with offset 0.5 is violated by all of R.
  Halfspace emptying{Vec{-1.0, -1.0, -1.0, -1.0}, 0.5};
  EXPECT_FALSE(incremental.TryCut(emptying));
  EXPECT_FALSE(rebuild.TryCut(emptying));
  EXPECT_EQ(incremental.adjacency_valid(), was_valid);
  ExpectBitIdentical(incremental, rebuild);
  Halfspace h2 = RandomItemCut(rng, 4);
  ASSERT_EQ(incremental.TryCut(h2), rebuild.TryCut(h2));
  ExpectBitIdentical(incremental, rebuild);
}

// Snapshot restore adopts vertices verbatim without the facet structure; the
// first post-restore Cut must rebuild it deterministically and keep emitting
// bit-identical vertex sets (PR 6 restart-at-every-round bit-identity).
TEST(PolyhedronIncrementalTest, SnapshotRestoreRebuildsAdjacency) {
  Rng rng(555);
  Polyhedron incremental = Polyhedron::UnitSimplex(3);
  for (int round = 0; round < 3; ++round) {
    (void)incremental.TryCut(RandomItemCut(rng, 3));
  }
  Result<Polyhedron> restored = Polyhedron::FromSnapshotParts(
      3, Polyhedron::Options(), incremental.cuts(), incremental.vertices());
  ASSERT_TRUE(restored.ok());
  EXPECT_FALSE(restored.value().adjacency_valid());
  ExpectBitIdentical(incremental, restored.value());
  Halfspace h = RandomItemCut(rng, 3);
  ASSERT_EQ(incremental.TryCut(h), restored.value().TryCut(h));
  ExpectBitIdentical(incremental, restored.value());
}

// ---------- Enclosing balls ----------

TEST(EnclosingBallTest, IterativeBallContainsAllPoints) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    size_t d = 2 + static_cast<size_t>(rng.UniformInt(0, 4));
    std::vector<Vec> pts;
    for (int i = 0; i < 12; ++i) {
      Vec p(d);
      for (size_t c = 0; c < d; ++c) p[c] = rng.Uniform(-1.0, 1.0);
      pts.push_back(p);
    }
    Ball ball = IterativeOuterBall(pts);
    for (const Vec& p : pts) EXPECT_TRUE(ball.Contains(p, 1e-9));
  }
}

TEST(EnclosingBallTest, SinglePointBall) {
  Ball b = IterativeOuterBall({Vec{0.3, 0.7}});
  EXPECT_NEAR(b.radius, 0.0, 1e-9);
  EXPECT_TRUE(ApproxEqual(b.center, Vec{0.3, 0.7}, 1e-9));
}

TEST(EnclosingBallTest, SymmetricPairCentered) {
  Ball b = IterativeOuterBall({Vec{0.0, 0.0}, Vec{2.0, 0.0}});
  EXPECT_NEAR(b.center[0], 1.0, 1e-3);
  EXPECT_NEAR(b.radius, 1.0, 1e-3);
}

TEST(EnclosingBallTest, WelzlExactOnKnownCases) {
  Rng rng(8);
  // Equilateral-ish triangle in 2D: circumradius = side/√3.
  std::vector<Vec> tri{Vec{0.0, 0.0}, Vec{1.0, 0.0},
                       Vec{0.5, std::sqrt(3.0) / 2.0}};
  Ball b = WelzlMinimumBall(tri, rng);
  EXPECT_NEAR(b.radius, 1.0 / std::sqrt(3.0), 1e-9);
  // Points inside a segment's ball do not grow it.
  std::vector<Vec> seg{Vec{0.0, 0.0}, Vec{2.0, 0.0}, Vec{1.0, 0.1}};
  b = WelzlMinimumBall(seg, rng);
  EXPECT_NEAR(b.radius, 1.0, 1e-9);
}

TEST(EnclosingBallTest, WelzlContainsAllAndBeatsHeuristic) {
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    size_t d = 2 + static_cast<size_t>(rng.UniformInt(0, 3));
    std::vector<Vec> pts;
    for (int i = 0; i < 15; ++i) {
      Vec p(d);
      for (size_t c = 0; c < d; ++c) p[c] = rng.Uniform(0.0, 1.0);
      pts.push_back(p);
    }
    Ball exact = WelzlMinimumBall(pts, rng);
    Ball heur = IterativeOuterBall(pts);
    for (const Vec& p : pts) EXPECT_TRUE(exact.Contains(p, 1e-7));
    // The exact minimum ball is no larger than the heuristic one.
    EXPECT_LE(exact.radius, heur.radius + 1e-7);
  }
}

TEST(EnclosingBallTest, IterativeShrinksRadiusAcrossIterations) {
  // Lemma 3: successive iterations never grow the covering radius. We check
  // the end-to-end consequence: the final ball is no worse than the start
  // (centred at the mean) by more than numerical noise.
  Rng rng(10);
  std::vector<Vec> pts;
  for (int i = 0; i < 30; ++i) {
    pts.push_back(Vec{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0),
                      rng.Uniform(0.0, 1.0)});
  }
  Vec mean(3);
  for (const Vec& p : pts) mean += p;
  mean /= 30.0;
  double start_radius = 0.0;
  for (const Vec& p : pts) start_radius = std::max(start_radius, Distance(mean, p));
  Ball b = IterativeOuterBall(pts);
  EXPECT_LE(b.radius, start_radius + 1e-9);
}

// ---------- Convex hull ----------

TEST(ConvexHullTest, SquareCornersExtreme) {
  std::vector<Vec> pts{Vec{0.0, 0.0}, Vec{1.0, 0.0}, Vec{0.0, 1.0},
                       Vec{1.0, 1.0}, Vec{0.5, 0.5}};
  auto extreme = ExtremePointIndices(pts);
  ASSERT_EQ(extreme.size(), 4u);
  EXPECT_TRUE(std::find(extreme.begin(), extreme.end(), 4u) == extreme.end());
}

TEST(ConvexHullTest, CollinearMiddleNotExtreme) {
  std::vector<Vec> pts{Vec{0.0, 0.0}, Vec{0.5, 0.5}, Vec{1.0, 1.0}};
  EXPECT_TRUE(IsExtremePoint(pts, 0));
  EXPECT_FALSE(IsExtremePoint(pts, 1));
  EXPECT_TRUE(IsExtremePoint(pts, 2));
}

TEST(ConvexHullTest, SinglePointExtreme) {
  std::vector<Vec> pts{Vec{0.3, 0.4}};
  EXPECT_TRUE(IsExtremePoint(pts, 0));
}

TEST(ConvexHullTest, ArgmaxOfLinearFunctionIsExtreme) {
  // Property: the maximiser of any linear function over a finite set is a
  // hull vertex (used by UH-Simplex's selection rule).
  Rng rng(11);
  std::vector<Vec> pts;
  for (int i = 0; i < 20; ++i) {
    pts.push_back(Vec{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0),
                      rng.Uniform(0.0, 1.0)});
  }
  for (int trial = 0; trial < 5; ++trial) {
    Vec w = rng.SimplexUniform(3);
    size_t best = 0;
    for (size_t i = 1; i < pts.size(); ++i) {
      if (Dot(w, pts[i]) > Dot(w, pts[best])) best = i;
    }
    EXPECT_TRUE(IsExtremePoint(pts, best));
  }
}

TEST(ConvexHullTest, SharedLpMatchesPerPointQueries) {
  // ExtremePointIndices patches one shared LP per query (excluded column +
  // RHS); its verdicts must match fresh single-point IsExtremePoint calls,
  // which rebuild from scratch — a regression check on the column
  // restore/exclude bookkeeping.
  Rng rng(13);
  std::vector<Vec> pts;
  for (int i = 0; i < 15; ++i) {
    pts.push_back(Vec{rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0),
                      rng.Uniform(0.0, 1.0), rng.Uniform(0.0, 1.0)});
  }
  // Add interior points (convex combinations) that must never be extreme.
  pts.push_back((pts[0] + pts[1]) / 2.0);
  pts.push_back((pts[2] + pts[3] + pts[4]) / 3.0);
  std::vector<size_t> shared = ExtremePointIndices(pts);
  std::vector<size_t> fresh;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (IsExtremePoint(pts, i)) fresh.push_back(i);
  }
  EXPECT_EQ(shared, fresh);
  for (size_t idx : shared) EXPECT_LT(idx, pts.size() - 2);
}

TEST(ConvexHullTest, DuplicateQueriesReuseSharedModel) {
  // Re-querying the same index through the shared model (restore → exclude
  // round trip on the same column) must be idempotent.
  std::vector<Vec> pts{Vec{0.0, 0.0}, Vec{1.0, 0.0}, Vec{0.0, 1.0},
                       Vec{0.25, 0.25}};
  std::vector<size_t> first = ExtremePointIndices(pts);
  std::vector<size_t> second = ExtremePointIndices(pts);
  EXPECT_EQ(first, second);
  ASSERT_EQ(first.size(), 3u);
}

TEST(ConvexHullTest, DuplicatedVertexStaysExtreme) {
  // Regression: a bitwise twin of a hull vertex used to "represent" the
  // query (λ_twin = 1), so every copy reported non-extreme and the vertex
  // vanished from the hull. All points equal to the query are excluded from
  // the combination, so each copy answers like the unique vertex would.
  std::vector<Vec> pts{Vec{0.0, 0.0}, Vec{1.0, 0.0}, Vec{0.0, 1.0},
                       Vec{1.0, 0.0},   // twin of index 1
                       Vec{0.4, 0.3}};  // interior
  EXPECT_TRUE(IsExtremePoint(pts, 1));
  EXPECT_TRUE(IsExtremePoint(pts, 3));
  EXPECT_FALSE(IsExtremePoint(pts, 4));
  std::vector<size_t> extreme = ExtremePointIndices(pts);
  EXPECT_EQ(extreme, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ConvexHullTest, AllIdenticalPointsAllExtreme) {
  // n copies of one point: the hull is that point, and with every twin
  // excluded the combination LP is infeasible for each copy. Previously the
  // answer was an empty extreme set.
  std::vector<Vec> pts{Vec{0.5, 0.5, 0.5}, Vec{0.5, 0.5, 0.5},
                       Vec{0.5, 0.5, 0.5}};
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE(IsExtremePoint(pts, i)) << "copy " << i;
  }
  EXPECT_EQ(ExtremePointIndices(pts), (std::vector<size_t>{0, 1, 2}));
}

TEST(ConvexHullTest, DimensionOneEndpoints) {
  // d = 1 degenerate case: the hull of scalars is [min, max]; only the
  // endpoints (and their duplicates) are extreme.
  std::vector<Vec> pts{Vec{0.3}, Vec{0.9}, Vec{0.1}, Vec{0.5}, Vec{0.9}};
  EXPECT_EQ(ExtremePointIndices(pts), (std::vector<size_t>{1, 2, 4}));
  EXPECT_FALSE(IsExtremePoint(pts, 0));
  EXPECT_FALSE(IsExtremePoint(pts, 3));
}

TEST(ConvexHullTest, CoplanarSquareInThreeDimensions) {
  // A planar square embedded in R³ (rank-deficient affine hull) plus its
  // centre: the LP certificate needs no full-dimensionality assumption.
  std::vector<Vec> pts{Vec{0.0, 0.0, 0.5}, Vec{1.0, 0.0, 0.5},
                       Vec{0.0, 1.0, 0.5}, Vec{1.0, 1.0, 0.5},
                       Vec{0.5, 0.5, 0.5}};
  EXPECT_EQ(ExtremePointIndices(pts), (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ConvexHullTest, CollinearSetWithDuplicatesInThreeDimensions) {
  // Collinear points in R³ with a duplicated endpoint and a duplicated
  // midpoint: endpoints (both copies) extreme, midpoints not.
  Vec a{0.0, 0.0, 0.0};
  Vec b{1.0, 2.0, 3.0};
  Vec mid = (a + b) / 2.0;
  std::vector<Vec> pts{a, mid, b, mid, a};
  EXPECT_EQ(ExtremePointIndices(pts), (std::vector<size_t>{0, 2, 4}));
}

// ---------- Hit-and-run ----------

TEST(HitAndRunTest, SamplesSatisfyConstraints) {
  Rng rng(12);
  std::vector<Halfspace> cuts{{Vec{1.0, -1.0, 0.0}, 0.0},
                              {Vec{0.0, 1.0, -1.0}, 0.0}};
  Vec start{0.5, 0.3, 0.2};
  auto samples = HitAndRunSample(cuts, start, 200, rng);
  ASSERT_EQ(samples.size(), 200u);
  for (const Vec& u : samples) {
    EXPECT_NEAR(u.Sum(), 1.0, 1e-7);
    for (size_t i = 0; i < 3; ++i) EXPECT_GE(u[i], -1e-7);
    for (const Halfspace& h : cuts) EXPECT_TRUE(h.Contains(u, 1e-6));
  }
}

TEST(HitAndRunTest, InfeasibleStartReturnsEmpty) {
  Rng rng(13);
  std::vector<Halfspace> cuts{{Vec{1.0, -1.0}, 0.0}};
  auto samples = HitAndRunSample(cuts, Vec{0.1, 0.9}, 10, rng);
  EXPECT_TRUE(samples.empty());
}

TEST(HitAndRunTest, CoversTheRegion) {
  // On the free simplex the chain should reach all three corners' vicinity.
  Rng rng(14);
  auto samples = HitAndRunSample({}, Vec{1.0 / 3, 1.0 / 3, 1.0 / 3}, 500, rng);
  ASSERT_EQ(samples.size(), 500u);
  double max0 = 0.0, max1 = 0.0, max2 = 0.0;
  for (const Vec& u : samples) {
    max0 = std::max(max0, u[0]);
    max1 = std::max(max1, u[1]);
    max2 = std::max(max2, u[2]);
  }
  EXPECT_GT(max0, 0.6);
  EXPECT_GT(max1, 0.6);
  EXPECT_GT(max2, 0.6);
}

}  // namespace
}  // namespace isrl
