// Unit tests for the RL substrate: replay memory, ε schedule, DQN agent.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "rl/dqn.h"
#include "rl/prioritized_replay.h"
#include "rl/replay.h"
#include "rl/schedule.h"

namespace isrl::rl {
namespace {

TEST(ReplayTest, GrowsToCapacityThenWraps) {
  ReplayMemory mem(3);
  EXPECT_TRUE(mem.empty());
  for (int i = 0; i < 5; ++i) {
    Transition t;
    t.state_action = Vec{static_cast<double>(i)};
    t.reward = i;
    mem.Add(std::move(t));
  }
  EXPECT_EQ(mem.size(), 3u);
  // The ring now holds rewards {2, 3, 4}: sampling must never see 0 or 1.
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    auto batch = mem.Sample(4, rng);
    for (const Transition* t : batch) EXPECT_GE(t->reward, 2.0);
  }
}

TEST(ReplayTest, SampleSizeRespected) {
  ReplayMemory mem(10);
  Transition t;
  t.state_action = Vec{1.0};
  mem.Add(t);
  Rng rng(2);
  EXPECT_EQ(mem.Sample(7, rng).size(), 7u);  // with replacement
}

TEST(ReplayDeathTest, SampleFromEmptyAborts) {
  ReplayMemory mem(2);
  Rng rng(3);
  EXPECT_DEATH(mem.Sample(1, rng), "ISRL_CHECK");
}

Transition PerTransition(double feature) {
  Transition t;
  t.state_action = Vec{feature};
  t.reward = feature;
  t.terminal = true;
  return t;
}

PrioritizedSample FreshHandle(const PrioritizedReplayMemory& mem,
                              size_t index) {
  PrioritizedSample s;
  s.index = index;
  s.generation = mem.generation(index);
  return s;
}

// Regression for the stale-index bug: a sample handle held across a ring
// wrap used to re-prioritise whatever transition had since been written into
// the same slot. With generation stamps the late update must be rejected and
// the new occupant's priority left untouched.
TEST(PrioritizedReplayBugTest, StaleHandleAcrossWrapIsRejected) {
  PrioritizedReplayMemory mem(4);
  for (int i = 0; i < 4; ++i) mem.Add(PerTransition(i));
  Rng rng(7);
  std::vector<PrioritizedSample> batch = mem.Sample(4, rng);

  // Two more Adds wrap the ring: slots 0 and 1 now hold different
  // transitions than the ones the batch sampled.
  mem.Add(PerTransition(100.0));
  mem.Add(PerTransition(101.0));

  for (const PrioritizedSample& s : batch) {
    const double before = mem.priority(s.index);
    const bool applied = mem.UpdatePriority(s, 1e6);
    if (s.index <= 1) {
      EXPECT_FALSE(applied) << "slot " << s.index << " was overwritten";
      EXPECT_DOUBLE_EQ(mem.priority(s.index), before)
          << "stale update must not touch the new occupant";
    } else {
      EXPECT_TRUE(applied) << "slot " << s.index << " was not overwritten";
    }
  }
}

TEST(PrioritizedReplayBugTest, ReusedSlotGetsFreshGeneration) {
  PrioritizedReplayMemory mem(2);
  mem.Add(PerTransition(1.0));
  const uint64_t g0 = mem.generation(0);
  mem.Add(PerTransition(2.0));
  mem.Add(PerTransition(3.0));  // wraps into slot 0
  EXPECT_NE(mem.generation(0), g0);
}

// The maintained sum tree must agree with a direct recomputation after an
// arbitrary interleaving of Adds (with wraps) and priority updates.
TEST(PrioritizedReplayTreeTest, AggregatesMatchDirectScan) {
  PrioritizedReplayMemory mem(6);  // non-power-of-two: padding leaves in play
  Rng rng(11);
  for (int step = 0; step < 200; ++step) {
    mem.Add(PerTransition(step));
    if (!mem.empty() && step % 3 == 0) {
      size_t slot = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mem.size()) - 1));
      mem.UpdatePriority(FreshHandle(mem, slot), rng.Uniform(0.0, 5.0));
    }
    double sum = 0.0, mn = mem.priority(0);
    for (size_t i = 0; i < mem.size(); ++i) {
      sum += mem.priority(i);
      mn = std::min(mn, mem.priority(i));
    }
    ASSERT_NEAR(mem.total_priority(), sum, 1e-9 * (1.0 + sum));
    ASSERT_DOUBLE_EQ(mem.min_priority(), mn);
  }
}

// Empirical sampling frequencies must track priority^α. This pins down the
// tree descent (the old cumulative scan had a tail-clamp bias that dumped
// the rounding mass on the last slot).
TEST(PrioritizedReplayTreeTest, SampleFrequenciesTrackPriorities) {
  PrioritizedOptions opt;
  opt.alpha = 1.0;  // probabilities directly proportional to priorities
  opt.priority_floor = 0.0;
  PrioritizedReplayMemory mem(5, opt);
  const double priorities[5] = {1.0, 2.0, 4.0, 8.0, 1.0};
  for (int i = 0; i < 5; ++i) mem.Add(PerTransition(i));
  for (size_t i = 0; i < 5; ++i) {
    mem.UpdatePriority(FreshHandle(mem, i), priorities[i]);
  }
  Rng rng(13);
  const size_t draws = 40000;
  size_t hits[5] = {0, 0, 0, 0, 0};
  for (const PrioritizedSample& s : mem.Sample(draws, rng)) ++hits[s.index];
  const double total = 16.0;
  for (size_t i = 0; i < 5; ++i) {
    const double expected = priorities[i] / total;
    const double observed = static_cast<double>(hits[i]) / draws;
    EXPECT_NEAR(observed, expected, 0.015) << "slot " << i;
  }
}

TEST(PrioritizedReplayTreeTest, SampledIndicesAlwaysInRange) {
  // Tail clamp: even with many draws and extreme priority skew, the descent
  // must never return a slot outside [0, size).
  PrioritizedReplayMemory mem(6);
  for (int i = 0; i < 3; ++i) mem.Add(PerTransition(i));  // size < capacity
  mem.UpdatePriority(FreshHandle(mem, 2), 1e9);
  Rng rng(17);
  for (const PrioritizedSample& s : mem.Sample(2000, rng)) {
    ASSERT_LT(s.index, 3u);
    ASSERT_NE(s.transition, nullptr);
  }
}

TEST(ScheduleTest, ConstantWhenStartEqualsEnd) {
  EpsilonSchedule s(0.9, 0.9, 100);
  EXPECT_DOUBLE_EQ(s.Value(0), 0.9);
  EXPECT_DOUBLE_EQ(s.Value(1000), 0.9);
}

TEST(ScheduleTest, LinearDecayEndsAtEnd) {
  EpsilonSchedule s(1.0, 0.1, 10);
  EXPECT_DOUBLE_EQ(s.Value(0), 1.0);
  EXPECT_NEAR(s.Value(5), 0.55, 1e-12);
  EXPECT_DOUBLE_EQ(s.Value(10), 0.1);
  EXPECT_DOUBLE_EQ(s.Value(999), 0.1);
}

TEST(ScheduleTest, ZeroDecayStepsJumpsToEnd) {
  EpsilonSchedule s(0.9, 0.2, 0);
  EXPECT_DOUBLE_EQ(s.Value(0), 0.2);
}

DqnOptions SmallOptions() {
  DqnOptions o;
  o.hidden_neurons = 16;
  o.batch_size = 16;
  o.min_replay_before_update = 16;
  o.learning_rate = 0.01;
  o.optimizer = OptimizerKind::kAdam;
  return o;
}

TEST(DqnTest, GreedySelectsHighestQ) {
  Rng rng(4);
  DqnAgent agent(2, SmallOptions(), rng);
  std::vector<Vec> candidates{Vec{0.1, 0.2}, Vec{0.5, -0.3}, Vec{0.9, 0.9}};
  size_t pick = agent.SelectGreedy(candidates);
  double best_q = agent.QValue(candidates[pick]);
  for (const Vec& c : candidates) EXPECT_GE(best_q, agent.QValue(c) - 1e-12);
}

TEST(DqnTest, EpsilonOneIsUniformRandom) {
  Rng rng(5);
  DqnAgent agent(1, SmallOptions(), rng);
  std::vector<Vec> candidates{Vec{0.0}, Vec{1.0}, Vec{2.0}};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) {
    counts[agent.SelectEpsilonGreedy(candidates, 1.0, rng)]++;
  }
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(DqnTest, EpsilonZeroIsGreedy) {
  Rng rng(6);
  DqnAgent agent(1, SmallOptions(), rng);
  std::vector<Vec> candidates{Vec{0.3}, Vec{-0.8}};
  size_t greedy = agent.SelectGreedy(candidates);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(agent.SelectEpsilonGreedy(candidates, 0.0, rng), greedy);
  }
}

TEST(DqnTest, NoUpdateBeforeMinReplay) {
  Rng rng(7);
  DqnAgent agent(1, SmallOptions(), rng);
  Transition t;
  t.state_action = Vec{0.5};
  t.reward = 1.0;
  t.terminal = true;
  agent.Remember(t);
  EXPECT_EQ(agent.Update(rng), 0.0);
  EXPECT_EQ(agent.num_updates(), 0u);
}

TEST(DqnTest, LearnsContextualBandit) {
  // One-step episodes: action feature +1 always pays 10, feature −1 pays 0.
  // After training, Q(+1) must clearly exceed Q(−1).
  Rng rng(8);
  DqnOptions opt = SmallOptions();
  opt.gamma = 0.8;
  DqnAgent agent(1, opt, rng);
  for (int i = 0; i < 200; ++i) {
    Transition good;
    good.state_action = Vec{1.0};
    good.reward = 10.0;
    good.terminal = true;
    agent.Remember(good);
    Transition bad;
    bad.state_action = Vec{-1.0};
    bad.reward = 0.0;
    bad.terminal = true;
    agent.Remember(bad);
    agent.Update(rng);
  }
  EXPECT_GT(agent.QValue(Vec{1.0}), agent.QValue(Vec{-1.0}) + 1.0);
  EXPECT_NEAR(agent.QValue(Vec{1.0}), 10.0, 3.0);
}

TEST(DqnTest, BootstrapsThroughNextCandidates) {
  // Two-step chain: state A (feature 0.5) leads to state B whose best
  // candidate (feature 1.0) pays 10 terminally. Q(A) should approach γ·10.
  Rng rng(9);
  DqnOptions opt = SmallOptions();
  opt.gamma = 0.5;
  opt.target_sync_every = 5;
  DqnAgent agent(1, opt, rng);
  for (int i = 0; i < 400; ++i) {
    Transition step2;
    step2.state_action = Vec{1.0};
    step2.reward = 10.0;
    step2.terminal = true;
    agent.Remember(step2);
    Transition step1;
    step1.state_action = Vec{0.5};
    step1.reward = 0.0;
    step1.terminal = false;
    step1.next_candidates = {Vec{1.0}};
    agent.Remember(step1);
    agent.Update(rng);
  }
  EXPECT_NEAR(agent.QValue(Vec{1.0}), 10.0, 3.0);
  EXPECT_NEAR(agent.QValue(Vec{0.5}), 5.0, 3.0);
}

TEST(DqnTest, TargetSyncCopiesWeights) {
  Rng rng(10);
  DqnOptions opt = SmallOptions();
  DqnAgent agent(2, opt, rng);
  // Push the main network away from the target, then sync.
  for (int i = 0; i < 40; ++i) {
    Transition t;
    t.state_action = Vec{0.5, 0.5};
    t.reward = 5.0;
    t.terminal = true;
    agent.Remember(t);
  }
  for (int i = 0; i < 10; ++i) agent.Update(rng);
  agent.SyncTarget();
  Vec probe{0.5, 0.5};
  EXPECT_NEAR(agent.main_network().Predict(probe),
              agent.target_network().Predict(probe), 1e-12);
}

TEST(DqnDeathTest, WrongInputDimAborts) {
  Rng rng(11);
  DqnAgent agent(3, SmallOptions(), rng);
  EXPECT_DEATH(agent.QValue(Vec{1.0}), "ISRL_CHECK");
}

// ---------- Batched vs scalar execution (DESIGN.md §12) ----------

// Feeds two identically-seeded agents — one batched, one on the scalar
// reference path — the same transition stream, then drives both through the
// same number of updates with identically-seeded sampling Rngs. The batched
// hot path keeps the scalar summation/accumulation order, so every loss (and
// every network weight behind it) must come out exactly equal, not merely
// close.
void ExpectBatchedMatchesScalar(bool prioritized, bool double_dqn) {
  DqnOptions opt = SmallOptions();
  opt.prioritized_replay = prioritized;
  opt.double_dqn = double_dqn;
  opt.target_sync_every = 7;
  opt.loss = LossKind::kHuber;
  DqnOptions scalar_opt = opt;
  scalar_opt.batched_execution = false;
  opt.batched_execution = true;

  Rng init_a(77), init_b(77);
  DqnAgent batched(2, opt, init_a);
  DqnAgent scalar(2, scalar_opt, init_b);

  Rng stream(78);
  for (int i = 0; i < 60; ++i) {
    Transition t;
    t.state_action = Vec{stream.Uniform(-1.0, 1.0), stream.Uniform(-1.0, 1.0)};
    t.reward = stream.Uniform(-1.0, 2.0);
    t.terminal = i % 3 == 0;
    if (!t.terminal) {
      const size_t pool = 1 + static_cast<size_t>(stream.UniformInt(0, 4));
      for (size_t c = 0; c < pool; ++c) {
        t.next_candidates.push_back(
            Vec{stream.Uniform(-1.0, 1.0), stream.Uniform(-1.0, 1.0)});
      }
    }
    Transition copy = t;
    batched.Remember(std::move(t));
    scalar.Remember(std::move(copy));
  }

  Rng update_a(79), update_b(79);
  for (int i = 0; i < 25; ++i) {
    const double loss_batched = batched.Update(update_a);
    const double loss_scalar = scalar.Update(update_b);
    EXPECT_EQ(loss_batched, loss_scalar) << "update " << i;
  }
  Vec probe{0.3, -0.6};
  EXPECT_EQ(batched.QValue(probe), scalar.QValue(probe));

  // Greedy selection agrees too (same weights, same tie-breaking).
  std::vector<Vec> candidates{Vec{0.1, 0.2}, Vec{0.5, -0.3}, Vec{0.9, 0.9},
                              Vec{-0.2, 0.4}};
  EXPECT_EQ(batched.SelectGreedy(candidates), scalar.SelectGreedy(candidates));
}

TEST(DqnBatchedTest, UniformReplayLossIdenticalToScalar) {
  ExpectBatchedMatchesScalar(/*prioritized=*/false, /*double_dqn=*/false);
}

TEST(DqnBatchedTest, UniformReplayDoubleDqnLossIdenticalToScalar) {
  ExpectBatchedMatchesScalar(/*prioritized=*/false, /*double_dqn=*/true);
}

TEST(DqnBatchedTest, PrioritizedReplayLossIdenticalToScalar) {
  ExpectBatchedMatchesScalar(/*prioritized=*/true, /*double_dqn=*/false);
}

TEST(DqnBatchedTest, PrioritizedDoubleDqnLossIdenticalToScalar) {
  ExpectBatchedMatchesScalar(/*prioritized=*/true, /*double_dqn=*/true);
}

TEST(DqnBatchedTest, MatrixSelectGreedyMatchesVectorOverload) {
  Rng rng(80);
  DqnAgent agent(2, SmallOptions(), rng);
  std::vector<Vec> candidates{Vec{0.1, 0.2}, Vec{0.5, -0.3}, Vec{0.9, 0.9}};
  Matrix stacked = Matrix::FromRows(candidates);
  EXPECT_EQ(agent.SelectGreedy(stacked), agent.SelectGreedy(candidates));
  Vec qs = agent.QValues(candidates);
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(qs[i], agent.QValue(candidates[i]));
  }
}

}  // namespace
}  // namespace isrl::rl
