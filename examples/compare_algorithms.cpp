// Side-by-side comparison of every interactive algorithm in the library —
// a miniature of the paper's Figure 9 — plus the noisy-user extension
// (the paper's stated future work) showing graceful degradation.
//
// Run:  ./build/examples/compare_algorithms
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/single_pass.h"
#include "baselines/uh_random.h"
#include "baselines/uh_simplex.h"
#include "baselines/utility_approx.h"
#include "core/aa.h"
#include "core/ea.h"
#include "core/session.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "user/sampler.h"

int main() {
  using namespace isrl;
  Rng rng(31);
  const double eps = 0.1;

  Dataset raw = GenerateSynthetic(8000, 4, Distribution::kAntiCorrelated, rng);
  Dataset sky = SkylineOf(raw);
  std::printf("4-d anti-correlated synthetic: %zu skyline tuples, eps=%.2f\n\n",
              sky.size(), eps);

  auto train = SampleUtilityVectors(120, 4, rng);
  auto eval = SampleUtilityVectors(10, 4, rng);

  EaOptions eopt;
  eopt.epsilon = eps;
  Ea ea(sky, eopt);
  ea.Train(train);
  AaOptions aopt;
  aopt.epsilon = eps;
  Aa aa(sky, aopt);
  aa.Train(train);
  UhOptions uopt;
  uopt.epsilon = eps;
  UhRandom uh_random(sky, uopt);
  UhSimplex uh_simplex(sky, uopt);
  SinglePassOptions spo;
  spo.epsilon = eps;
  SinglePass single_pass(sky, spo);
  UtilityApproxOptions uao;
  uao.epsilon = eps;
  UtilityApprox utility_approx(sky, uao);

  std::vector<InteractiveAlgorithm*> algorithms{
      &ea, &aa, &uh_random, &uh_simplex, &single_pass, &utility_approx};

  std::printf("--- exact users (the paper's protocol) ---\n");
  PrintEvalHeader("users");
  for (InteractiveAlgorithm* algo : algorithms) {
    PrintEvalRow("exact", Evaluate(*algo, sky, eval, eps));
  }

  std::printf("\n--- noisy users: every answer flipped with probability 0.15 "
              "(future-work extension) ---\n");
  PrintEvalHeader("users");
  for (InteractiveAlgorithm* algo : algorithms) {
    PrintEvalRow("noisy",
                 Evaluate(*algo, sky, eval, eps,
                          MakeNoisyUserFactory(0.15)));
  }

  std::printf("\nReading the table: EA asks the fewest questions and "
              "guarantees regret < eps with exact users; AA trades a little "
              "of that for speed and scalability; the short-term baselines "
              "need 2-10x the questions. Under noise no algorithm keeps a "
              "guarantee, but all terminate and most stay near the "
              "threshold.\n");
  return 0;
}
