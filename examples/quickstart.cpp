// Quickstart: the smallest complete use of the ISRL public API.
//
// 1. Build a dataset (here: synthetic anti-correlated tuples) and reduce it
//    to its skyline — the standard preprocessing for regret queries.
// 2. Train the exact RL algorithm EA on sampled utility vectors.
// 3. Interact with a user (simulated by a hidden utility vector) and get a
//    tuple whose regret ratio is below ε.
//
// Run:  ./build/examples/quickstart
#include <cstdio>

#include "core/ea.h"
#include "core/regret.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "user/sampler.h"
#include "user/user.h"

int main() {
  using namespace isrl;

  // --- 1. Data -------------------------------------------------------------
  Rng rng(2024);
  Dataset raw = GenerateSynthetic(/*n=*/5000, /*d=*/4,
                                  Distribution::kAntiCorrelated, rng);
  Dataset sky = SkylineOf(raw);
  std::printf("dataset: %zu tuples, skyline: %zu tuples, d=%zu\n", raw.size(),
              sky.size(), sky.dim());

  // --- 2. Train the interactive agent --------------------------------------
  EaOptions options;
  options.epsilon = 0.1;  // returned tuple has regret ratio < 10%
  Ea ea(sky, options);
  TrainStats stats = ea.Train(SampleUtilityVectors(100, sky.dim(), rng));
  std::printf("trained on %zu simulated users (avg %.1f questions each)\n",
              stats.episodes, stats.mean_rounds);

  // --- 3. Interact ----------------------------------------------------------
  // A real deployment would implement UserOracle by asking a person; here a
  // hidden utility vector answers for them.
  Vec hidden_preference = rng.SimplexUniform(sky.dim());
  LinearUser user(hidden_preference);
  InteractionResult result = ea.Interact(user);

  std::printf("\nasked %zu questions; returned tuple #%zu %s\n", result.rounds,
              result.best_index,
              sky.point(result.best_index).ToString(3).c_str());
  std::printf("actual regret ratio: %.4f (threshold %.2f)\n",
              RegretRatioAt(sky, result.best_index, hidden_preference),
              options.epsilon);
  return 0;
}
