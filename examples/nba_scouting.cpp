// NBA scouting — high-dimensional interactive search with algorithm AA.
//
// The Player dataset has 20 attributes, far beyond what polyhedron-based
// algorithms handle (the paper caps them at d = 10). AA's LP-based state
// keeps the interaction tractable: a scout answers a few dozen player-vs-
// player questions and receives a player matching their hidden priorities.
// Three scout archetypes (scorer-first, defence-first, all-round) show the
// search adapting to different preferences.
//
// Run:  ./build/examples/nba_scouting
#include <cstdio>

#include "core/aa.h"
#include "core/regret.h"
#include "data/real_like.h"
#include "data/skyline.h"
#include "user/sampler.h"
#include "user/user.h"

namespace {

using namespace isrl;

Vec ScoutProfile(const Dataset& sky, std::initializer_list<std::pair<const char*, double>> weights) {
  Vec u(sky.dim());
  double total = 0.0;
  for (const auto& [name, w] : weights) {
    for (size_t c = 0; c < sky.dim(); ++c) {
      if (sky.attribute_names()[c] == name) {
        u[c] = w;
        total += w;
      }
    }
  }
  // Spread a small remainder over every attribute so the profile is a valid
  // utility vector (non-negative, sums to 1).
  double rest = 1.0 - total;
  for (size_t c = 0; c < sky.dim(); ++c) {
    u[c] += rest / static_cast<double>(sky.dim());
  }
  return u;
}

void Scout(Aa& aa, const Dataset& sky, const char* label, const Vec& profile) {
  LinearUser scout(profile);
  InteractionResult r = aa.Interact(scout);
  const Vec& p = sky.point(r.best_index);
  std::printf("\n%s scout: %zu questions -> player #%zu\n", label, r.rounds,
              r.best_index);
  std::printf("  key stats: pts=%.2f reb=%.2f ast=%.2f stl=%.2f blk=%.2f "
              "eff=%.2f (normalised)\n",
              p[2], p[11], p[12], p[13], p[14], p[19]);
  std::printf("  regret ratio vs true favourite: %.4f\n",
              RegretRatioAt(sky, r.best_index, profile));
}

}  // namespace

int main() {
  using namespace isrl;
  Rng rng(11);

  std::printf("Building the player database (%zu player-seasons, %zu "
              "attributes)...\n", size_t{6000}, kPlayerAttributes);
  Dataset players = MakePlayerDataset(rng, 6000);
  Dataset sky = SkylineOf(players);
  std::printf("%zu players on the skyline.\n", sky.size());

  AaOptions options;
  options.epsilon = 0.15;
  Aa aa(sky, options);
  std::printf("Training the scalable agent (AA) on simulated scouts...\n");
  aa.Train(SampleUtilityVectors(40, sky.dim(), rng));

  Scout(aa, sky, "Scorer-first",
        ScoutProfile(sky, {{"points", 0.4}, {"fg_pct", 0.2}, {"usage", 0.2}}));
  Scout(aa, sky, "Defence-first",
        ScoutProfile(sky, {{"def_rebounds", 0.3},
                           {"steals", 0.25},
                           {"blocks", 0.25}}));
  Scout(aa, sky, "All-round",
        ScoutProfile(sky, {{"efficiency", 0.3}, {"plus_minus", 0.3}}));

  std::printf("\nEach search finished in tens of questions on a 20-attribute "
              "table — the setting where the prior SinglePass baseline needs "
              "hundreds (see bench/fig16_player).\n");
  return 0;
}
