// Car shopping — the paper's motivating scenario (Section I): Alice wants a
// car; the system learns her preference over (price, mileage, mpg) with a
// handful of A-or-B questions and recommends one.
//
// The example narrates every interactive round: which two cars were shown
// and which one "Alice" (a hidden utility vector) picked. It then contrasts
// EA's question count with UH-Random's on the same user.
//
// Run:  ./build/examples/car_shopping
#include <cstdio>

#include "baselines/uh_random.h"
#include "core/ea.h"
#include "core/regret.h"
#include "data/real_like.h"
#include "data/skyline.h"
#include "user/sampler.h"
#include "user/user.h"

namespace {

using namespace isrl;

// Wraps a LinearUser and narrates each question on the console.
class NarratingUser : public UserOracle {
 public:
  NarratingUser(Vec utility, const Dataset* sky)
      : inner_(std::move(utility)), sky_(sky) {}

  bool Prefers(const Vec& a, const Vec& b) override {
    ++questions_asked_;
    bool answer = inner_.Prefers(a, b);
    std::printf("  Q%zu: car A %s  vs  car B %s  ->  Alice picks %s\n",
                questions_asked_, Describe(a).c_str(), Describe(b).c_str(),
                answer ? "A" : "B");
    return answer;
  }

 private:
  // Attributes are normalised to (0,1] with higher = better; render them as
  // qualitative labels so the dialogue reads naturally.
  static std::string Describe(const Vec& car) {
    auto level = [](double v) {
      if (v > 0.75) return "great";
      if (v > 0.5) return "good";
      if (v > 0.25) return "fair";
      return "poor";
    };
    char buf[96];
    std::snprintf(buf, sizeof(buf), "(price:%s mileage:%s mpg:%s)",
                  level(car[0]), level(car[1]), level(car[2]));
    return buf;
  }

  LinearUser inner_;
  const Dataset* sky_;
};

}  // namespace

int main() {
  using namespace isrl;
  Rng rng(7);

  std::printf("Building the used-car market (%zu cars)...\n", kCarRows);
  Dataset market = MakeCarDataset(rng);
  Dataset sky = SkylineOf(market);
  std::printf("%zu cars survive skyline pruning (no car on the skyline is "
              "worse than another in every way).\n\n",
              sky.size());

  EaOptions options;
  options.epsilon = 0.1;
  Ea ea(sky, options);
  std::printf("Training the interactive agent on simulated shoppers...\n");
  ea.Train(SampleUtilityVectors(150, sky.dim(), rng));

  // Alice cares mostly about price, some about fuel economy.
  Vec alice_preference{0.6, 0.1, 0.3};
  std::printf("\nAlice starts shopping (hidden preference: price 60%%, "
              "mileage 10%%, mpg 30%%).\n");
  NarratingUser alice(alice_preference, &sky);
  InteractionResult result = ea.Interact(alice);

  const Vec& pick = sky.point(result.best_index);
  std::printf("\nAfter %zu questions the system recommends car #%zu "
              "(price:%.2f mileage:%.2f mpg:%.2f, all in normalised "
              "higher-is-better units).\n",
              result.rounds, result.best_index, pick[0], pick[1], pick[2]);
  std::printf("Regret ratio vs Alice's true favourite: %.4f (< %.2f "
              "guaranteed).\n",
              RegretRatioAt(sky, result.best_index, alice_preference),
              options.epsilon);

  // The same shopper under the short-term SOTA baseline.
  UhOptions uh_options;
  uh_options.epsilon = options.epsilon;
  UhRandom uh(sky, uh_options);
  LinearUser alice_again(alice_preference);
  InteractionResult base = uh.Interact(alice_again);
  std::printf("\nUH-Random (the SOTA baseline) needed %zu questions for the "
              "same shopper — the long-term RL policy asked %.0f%% fewer.\n",
              base.rounds,
              100.0 * (1.0 - static_cast<double>(result.rounds) /
                                 static_cast<double>(base.rounds)));
  return 0;
}
