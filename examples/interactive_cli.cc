// Interactive CLI: a real human drives an episode over stdin through the
// sans-IO step API (DESIGN.md §13).
//
// This is the example the step API exists for. The blocking Interact()
// driver needs a UserOracle it can call synchronously; a person typing at a
// terminal is the opposite — slow, asynchronous, free to walk away. So the
// program holds an InteractionSession and owns all the IO itself:
//
//   NextQuestion()  ->  print the two tuples, read a line from stdin
//   PostAnswer()    <-  "1" / "2" (or "s" to skip the question)
//   Cancel()        <-  "q" — the session still returns its best-so-far
//
// Run:  ./build/examples/interactive_cli [algorithm] [--save F] [--resume F]
// where [algorithm] is one of: ea (default), uh-random, uh-simplex,
// single-pass, utility-approx.
//
// Durability (DESIGN.md §14): with --save FILE, quitting ('q' or EOF) writes
// the session's checkpoint to FILE instead of cancelling, so the episode can
// be picked up later; with --resume FILE, the program reopens that
// checkpoint and continues exactly where the saved run stopped (the dataset
// and EA training are deterministic, so the restored session matches).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "baselines/single_pass.h"
#include "baselines/uh_random.h"
#include "baselines/uh_simplex.h"
#include "baselines/utility_approx.h"
#include "core/ea.h"
#include "core/snapshot.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "user/sampler.h"

namespace {

using namespace isrl;

std::unique_ptr<InteractiveAlgorithm> MakeAlgorithm(const std::string& which,
                                                    const Dataset& sky,
                                                    Rng& rng) {
  if (which == "ea") {
    EaOptions options;
    options.epsilon = 0.1;
    auto ea = std::make_unique<Ea>(sky, options);
    std::printf("training EA on 50 simulated users...\n");
    ea->Train(SampleUtilityVectors(50, sky.dim(), rng));
    return ea;
  }
  if (which == "uh-random") {
    UhOptions options;
    options.epsilon = 0.1;
    return std::make_unique<UhRandom>(sky, options);
  }
  if (which == "uh-simplex") {
    UhOptions options;
    options.epsilon = 0.1;
    return std::make_unique<UhSimplex>(sky, options);
  }
  if (which == "single-pass") {
    SinglePassOptions options;
    options.epsilon = 0.1;
    return std::make_unique<SinglePass>(sky, options);
  }
  if (which == "utility-approx") {
    UtilityApproxOptions options;
    options.epsilon = 0.1;
    return std::make_unique<UtilityApprox>(sky, options);
  }
  return nullptr;
}

void PrintOption(int label, const Vec& point, bool synthetic) {
  std::printf("  [%d] %s%s\n", label, point.ToString(3).c_str(),
              synthetic ? "  (constructed trade-off, not a real tuple)" : "");
}

}  // namespace

int main(int argc, char** argv) {
  std::string which = "ea";
  std::string save_path;
  std::string resume_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--save" && i + 1 < argc) {
      save_path = argv[++i];
    } else if (arg == "--resume" && i + 1 < argc) {
      resume_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: interactive_cli [algorithm] [--save FILE] "
                   "[--resume FILE]\n");
      return 1;
    } else {
      which = arg;
    }
  }

  Rng rng(2025);
  Dataset raw = GenerateSynthetic(/*n=*/2000, /*d=*/3,
                                  Distribution::kAntiCorrelated, rng);
  Dataset sky = SkylineOf(raw);
  std::printf("skyline: %zu tuples, d=%zu\n", sky.size(), sky.dim());

  std::unique_ptr<InteractiveAlgorithm> algorithm =
      MakeAlgorithm(which, sky, rng);
  if (algorithm == nullptr) {
    std::fprintf(stderr,
                 "unknown algorithm '%s' (use ea, uh-random, uh-simplex, "
                 "single-pass, utility-approx)\n",
                 which.c_str());
    return 1;
  }

  SessionConfig config;
  config.budget.max_rounds = 30;  // nobody answers hundreds of questions
  std::unique_ptr<InteractionSession> session;
  if (!resume_path.empty()) {
    Result<std::string> bytes = snapshot::ReadFileBytes(resume_path);
    if (!bytes.ok()) {
      std::fprintf(stderr, "cannot read checkpoint: %s\n",
                   bytes.status().ToString().c_str());
      return 1;
    }
    Result<std::unique_ptr<InteractionSession>> restored =
        algorithm->RestoreSession(*bytes, config);
    if (!restored.ok()) {
      std::fprintf(stderr, "cannot resume session: %s\n",
                   restored.status().ToString().c_str());
      return 1;
    }
    session = std::move(*restored);
    std::printf("resumed session from %s\n", resume_path.c_str());
  } else {
    session = algorithm->StartSession(config);
  }

  std::printf(
      "\n%s will ask which tuple you prefer (larger values are better on "
      "every attribute).\nAnswer 1 or 2, s to skip a question, q to stop "
      "early.\n\n",
      algorithm->name().c_str());

  char line[64];
  size_t asked = 0;
  while (true) {
    std::optional<SessionQuestion> question = session->NextQuestion();
    if (!question.has_value()) break;
    std::printf("question %zu:\n", ++asked);
    PrintOption(1, question->first, question->synthetic);
    PrintOption(2, question->second, question->synthetic);
    std::printf("> ");
    std::fflush(stdout);
    if (std::fgets(line, sizeof line, stdin) == nullptr || line[0] == 'q') {
      if (!save_path.empty()) {
        // Quit-with-save: checkpoint the live session instead of cancelling,
        // so `--resume` continues from this exact question.
        Result<std::string> state = session->SaveState();
        Status written = state.ok()
                             ? snapshot::WriteFileBytes(save_path, *state)
                             : state.status();
        if (!written.ok()) {
          std::fprintf(stderr, "checkpoint failed: %s\n",
                       written.ToString().c_str());
          session->Cancel();
          break;
        }
        std::printf("\nsession checkpointed to %s — resume with:\n"
                    "  interactive_cli %s --resume %s\n",
                    save_path.c_str(), which.c_str(), save_path.c_str());
        return 0;
      }
      session->Cancel();  // EOF or quit: best-so-far, not a crash
      break;
    }
    switch (line[0]) {
      case '1': session->PostAnswer(Answer::kFirst); break;
      case '2': session->PostAnswer(Answer::kSecond); break;
      default: session->PostAnswer(Answer::kNoAnswer); break;  // skipped
    }
  }

  InteractionResult result = session->Finish();
  std::printf("\nafter %zu questions (%zu skipped), %s recommends tuple "
              "#%zu:\n  %s\n",
              result.rounds, result.no_answers, algorithm->name().c_str(),
              result.best_index,
              sky.point(result.best_index).ToString(3).c_str());
  return 0;
}
