// Interactive CLI: a real human drives an episode over stdin through the
// sans-IO step API (DESIGN.md §13).
//
// This is the example the step API exists for. The blocking Interact()
// driver needs a UserOracle it can call synchronously; a person typing at a
// terminal is the opposite — slow, asynchronous, free to walk away. So the
// program holds an InteractionSession and owns all the IO itself:
//
//   NextQuestion()  ->  print the two tuples, read a line from stdin
//   PostAnswer()    <-  "1" / "2" (or "s" to skip the question)
//   Cancel()        <-  "q" — the session still returns its best-so-far
//
// Run:  ./build/examples/interactive_cli [algorithm]
// where [algorithm] is one of: ea (default), uh-random, uh-simplex,
// single-pass, utility-approx.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "baselines/single_pass.h"
#include "baselines/uh_random.h"
#include "baselines/uh_simplex.h"
#include "baselines/utility_approx.h"
#include "core/ea.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "user/sampler.h"

namespace {

using namespace isrl;

std::unique_ptr<InteractiveAlgorithm> MakeAlgorithm(const std::string& which,
                                                    const Dataset& sky,
                                                    Rng& rng) {
  if (which == "ea") {
    EaOptions options;
    options.epsilon = 0.1;
    auto ea = std::make_unique<Ea>(sky, options);
    std::printf("training EA on 50 simulated users...\n");
    ea->Train(SampleUtilityVectors(50, sky.dim(), rng));
    return ea;
  }
  if (which == "uh-random") {
    UhOptions options;
    options.epsilon = 0.1;
    return std::make_unique<UhRandom>(sky, options);
  }
  if (which == "uh-simplex") {
    UhOptions options;
    options.epsilon = 0.1;
    return std::make_unique<UhSimplex>(sky, options);
  }
  if (which == "single-pass") {
    SinglePassOptions options;
    options.epsilon = 0.1;
    return std::make_unique<SinglePass>(sky, options);
  }
  if (which == "utility-approx") {
    UtilityApproxOptions options;
    options.epsilon = 0.1;
    return std::make_unique<UtilityApprox>(sky, options);
  }
  return nullptr;
}

void PrintOption(int label, const Vec& point, bool synthetic) {
  std::printf("  [%d] %s%s\n", label, point.ToString(3).c_str(),
              synthetic ? "  (constructed trade-off, not a real tuple)" : "");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "ea";

  Rng rng(2025);
  Dataset raw = GenerateSynthetic(/*n=*/2000, /*d=*/3,
                                  Distribution::kAntiCorrelated, rng);
  Dataset sky = SkylineOf(raw);
  std::printf("skyline: %zu tuples, d=%zu\n", sky.size(), sky.dim());

  std::unique_ptr<InteractiveAlgorithm> algorithm =
      MakeAlgorithm(which, sky, rng);
  if (algorithm == nullptr) {
    std::fprintf(stderr,
                 "unknown algorithm '%s' (use ea, uh-random, uh-simplex, "
                 "single-pass, utility-approx)\n",
                 which.c_str());
    return 1;
  }

  SessionConfig config;
  config.budget.max_rounds = 30;  // nobody answers hundreds of questions
  std::unique_ptr<InteractionSession> session =
      algorithm->StartSession(config);

  std::printf(
      "\n%s will ask which tuple you prefer (larger values are better on "
      "every attribute).\nAnswer 1 or 2, s to skip a question, q to stop "
      "early.\n\n",
      algorithm->name().c_str());

  char line[64];
  size_t asked = 0;
  while (true) {
    std::optional<SessionQuestion> question = session->NextQuestion();
    if (!question.has_value()) break;
    std::printf("question %zu:\n", ++asked);
    PrintOption(1, question->first, question->synthetic);
    PrintOption(2, question->second, question->synthetic);
    std::printf("> ");
    std::fflush(stdout);
    if (std::fgets(line, sizeof line, stdin) == nullptr || line[0] == 'q') {
      session->Cancel();  // EOF or quit: best-so-far, not a crash
      break;
    }
    switch (line[0]) {
      case '1': session->PostAnswer(Answer::kFirst); break;
      case '2': session->PostAnswer(Answer::kSecond); break;
      default: session->PostAnswer(Answer::kNoAnswer); break;  // skipped
    }
  }

  InteractionResult result = session->Finish();
  std::printf("\nafter %zu questions (%zu skipped), %s recommends tuple "
              "#%zu:\n  %s\n",
              result.rounds, result.no_answers, algorithm->name().c_str(),
              result.best_index,
              sky.point(result.best_index).ToString(3).c_str());
  return 0;
}
