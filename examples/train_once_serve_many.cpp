// Production workflow: train the interactive agent once, persist it, and
// serve many user sessions from the saved network — the deployment shape a
// real system uses (training offline, interaction online).
//
// The example trains EA on the Car market, saves the agent, constructs a
// fresh "serving" instance that loads the network instead of training, and
// answers a stream of simulated shoppers, reporting throughput and the
// per-session question count.
//
// Run:  ./build/examples/train_once_serve_many
#include <cstdio>

#include "common/stopwatch.h"
#include "core/ea.h"
#include "core/regret.h"
#include "data/real_like.h"
#include "data/skyline.h"
#include "user/sampler.h"
#include "user/user.h"

int main() {
  using namespace isrl;
  Rng rng(77);
  const char* agent_path = "/tmp/isrl_car_agent.net";

  Dataset market = MakeCarDataset(rng);
  Dataset sky = SkylineOf(market);
  std::printf("market: %zu cars, %zu on the skyline\n", market.size(),
              sky.size());

  // ---- Offline: train and persist. ----
  EaOptions options;
  options.epsilon = 0.1;
  {
    Ea trainer(sky, options);
    Stopwatch train_watch;
    TrainStats stats =
        trainer.Train(SampleUtilityVectors(200, sky.dim(), rng));
    std::printf("offline training: %zu episodes in %.2fs (avg %.1f questions "
                "per episode)\n",
                stats.episodes, train_watch.ElapsedSeconds(),
                stats.mean_rounds);
    Status saved = trainer.SaveAgent(agent_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::printf("agent saved to %s\n\n", agent_path);
  }  // trainer discarded — the serving process starts from scratch

  // ---- Online: load and serve. ----
  Ea server(sky, options);
  Status loaded = server.LoadAgent(agent_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.ToString().c_str());
    return 1;
  }
  std::printf("serving process loaded the agent (no training).\n");

  const size_t sessions = 50;
  Stopwatch serve_watch;
  double total_rounds = 0.0, worst_regret = 0.0;
  for (size_t s = 0; s < sessions; ++s) {
    Vec preference = rng.SimplexUniform(sky.dim());
    LinearUser shopper(preference);
    InteractionResult r = server.Interact(shopper);
    total_rounds += static_cast<double>(r.rounds);
    double regret = RegretRatioAt(sky, r.best_index, preference);
    if (regret > worst_regret) worst_regret = regret;
  }
  double elapsed = serve_watch.ElapsedSeconds();
  std::printf("served %zu shoppers in %.2fs (%.1f ms/session), avg %.1f "
              "questions each, worst regret %.4f (< %.2f guaranteed)\n",
              sessions, elapsed, 1e3 * elapsed / sessions,
              total_rounds / sessions, worst_regret, options.epsilon);
  return 0;
}
