// The closed train→serve loop (DESIGN.md §18): train the interactive agent
// lightly, publish it into a versioned model registry, serve a wave of
// shoppers through the scheduler while harvesting their traces, retrain on
// the harvested utility estimates, hot-swap the new version, and serve a
// second wave — reporting the before/after mean question count and what the
// drift detector makes of the post-swap population.
//
// Sessions pin the registry snapshot they start under, so the mid-run
// Publish() never changes what an in-flight episode computes; only sessions
// started after the swap see the retrained model.
//
// Run:  ./build/examples/train_once_serve_many
#include <cstdio>
#include <memory>
#include <vector>

#include "common/stopwatch.h"
#include "core/aa.h"
#include "core/regret.h"
#include "core/scheduler.h"
#include "data/real_like.h"
#include "data/skyline.h"
#include "nn/registry.h"
#include "serve/drift.h"
#include "serve/trace_store.h"
#include "serve/trainer.h"
#include "user/sampler.h"
#include "user/user.h"

using namespace isrl;

namespace {

struct WaveStats {
  double mean_rounds = 0.0;
  double worst_regret = 0.0;
  double seconds = 0.0;
};

/// Serves `count` shoppers through one SessionScheduler, every session
/// pinned to the registry's latest snapshot; finished sessions harvest
/// their trace records into `store`.
WaveStats ServeWave(Aa& server, nn::ModelRegistry& registry,
                    TraceStore& store, const Dataset& sky, size_t count,
                    uint64_t seed_base, Rng& rng) {
  SessionScheduler scheduler;
  scheduler.SetHarvestSink(
      [&store](size_t id, const SessionTraceRecord& record) {
        store.Harvest(id, record);
      });
  std::vector<std::unique_ptr<LinearUser>> shoppers;
  std::vector<UserOracle*> oracles;
  std::vector<Vec> preferences;
  for (size_t s = 0; s < count; ++s) {
    Vec preference = rng.SimplexUniform(sky.dim());
    shoppers.push_back(std::make_unique<LinearUser>(preference));
    oracles.push_back(shoppers.back().get());
    preferences.push_back(std::move(preference));
    SessionConfig config;
    config.seed = seed_base + s;
    config.model = registry.Latest();  // pin: hot-swaps never touch us
    scheduler.Add(server.StartSession(config), &server);
  }
  Stopwatch watch;
  std::vector<InteractionResult> results = DriveWithUsers(scheduler, oracles);
  WaveStats stats;
  stats.seconds = watch.ElapsedSeconds();
  for (size_t s = 0; s < count; ++s) {
    stats.mean_rounds += static_cast<double>(results[s].rounds);
    double regret = RegretRatioAt(sky, results[s].best_index, preferences[s]);
    if (regret > stats.worst_regret) stats.worst_regret = regret;
  }
  stats.mean_rounds /= static_cast<double>(count);
  return stats;
}

}  // namespace

int main() {
  Rng data_rng(77);
  Dataset market = MakeCarDataset(data_rng);
  Dataset sky = SkylineOf(market);
  std::printf("market: %zu cars, %zu on the skyline\n", market.size(),
              sky.size());

  // ---- Bootstrap: a lightly trained v1 goes into the registry. ----
  Rng rng(7);
  AaOptions options;
  options.epsilon = 0.1;
  options.seed = 7;
  options.dqn.hidden_neurons = 32;
  options.dqn.batch_size = 16;
  options.dqn.min_replay_before_update = 16;
  Aa server(sky, options);
  nn::ModelRegistry registry;
  {
    Stopwatch train_watch;
    TrainStats stats = server.Train(SampleUtilityVectors(2, sky.dim(), rng));
    uint64_t v = registry.Publish(server.agent().main_network());
    std::printf("bootstrap: %zu training episodes in %.2fs -> published "
                "model v%llu (fingerprint %016llx)\n",
                stats.episodes, train_watch.ElapsedSeconds(),
                static_cast<unsigned long long>(v),
                static_cast<unsigned long long>(
                    registry.Latest()->fingerprint()));
  }

  // ---- Wave 1: serve under v1, harvesting traces. ----
  TraceStore traces;
  const size_t wave = 40;
  WaveStats before = ServeWave(server, registry, traces, sky, wave,
                               /*seed_base=*/1000, rng);
  std::printf("wave 1 (v1): %zu shoppers, avg %.1f questions, worst regret "
              "%.4f, %.2fs\n",
              wave, before.mean_rounds, before.worst_regret, before.seconds);
  DriftBaseline baseline = DriftBaseline::FromPopulation(
      [&] {
        std::vector<double> rounds;
        for (const SessionTraceRecord& r : traces.Window()) {
          rounds.push_back(static_cast<double>(r.rounds));
        }
        return rounds;
      }(),
      traces.WindowOutcomes());

  // ---- Retrain on the harvested utility estimates, hot-swap to v2. ----
  ContinuousTrainer trainer(
      traces, registry,
      RetrainHooks{
          [&server](const std::vector<Vec>& utilities) {
            return server.Train(utilities);
          },
          [&server]() -> const nn::Network& {
            return server.agent().main_network();
          }});
  // Each harvested session contributed its learned utility estimate (the
  // final range centroid) — the replay set the retrain consumes. Top it up
  // with fresh sampled utilities so v2 sees a fuller curriculum.
  Result<RetrainOutcome> retrained = trainer.RetrainOnce();
  if (!retrained.ok()) {
    std::fprintf(stderr, "retrain failed: %s\n",
                 retrained.status().ToString().c_str());
    return 1;
  }
  TrainStats extra = server.Train(SampleUtilityVectors(120, sky.dim(), rng));
  uint64_t v2 = registry.Publish(server.agent().main_network());
  std::printf("retrain: %zu harvested utilities -> v%llu, then %zu sampled "
              "episodes -> hot-swapped v%llu\n",
              retrained->samples,
              static_cast<unsigned long long>(retrained->version),
              extra.episodes, static_cast<unsigned long long>(v2));

  // ---- Wave 2: sessions started after the swap pin v2. ----
  TraceStore live;
  WaveStats after = ServeWave(server, registry, live, sky, wave,
                              /*seed_base=*/2000, rng);
  std::printf("wave 2 (v%llu): %zu shoppers, avg %.1f questions, worst "
              "regret %.4f, %.2fs\n",
              static_cast<unsigned long long>(v2), wave, after.mean_rounds,
              after.worst_regret, after.seconds);
  std::printf("hot-swap effect: %.1f -> %.1f questions per session "
              "(%+.1f)\n",
              before.mean_rounds, after.mean_rounds,
              after.mean_rounds - before.mean_rounds);

  // ---- Drift check: does the post-swap population look like wave 1? ----
  DriftReport report = DetectDrift(baseline, live.Window());
  if (report.drifted) {
    std::printf("drift detector: flagged — %s\n", report.reason.c_str());
  } else {
    std::printf("drift detector: live population consistent with the "
                "baseline (z = %.2f)\n",
                report.rounds_z);
  }
  return 0;
}
