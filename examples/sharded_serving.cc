// Population-scale serving (DESIGN.md §15): a ShardedScheduler pins N
// SessionScheduler shards to worker threads behind a thread-safe,
// Status-returning boundary. Sessions are routed to shards by id; each
// shard coalesces its in-flight sessions' Q-inference into one
// PredictBatch per tick and write-ahead-logs every answer to its own
// "<prefix>.shard<k>" file before applying it.
//
// The example serves a population of simulated car shoppers on 4 shards
// with durability on, then plays the restart story: a fresh engine
// recovers every shard independently from its file (snapshot + WAL
// replay) and reproduces the exact same recommendations.
//
// Run:  ./build/examples/sharded_serving
#include <cstdio>
#include <memory>
#include <vector>

#include "common/stopwatch.h"
#include "core/ea.h"
#include "data/real_like.h"
#include "data/skyline.h"
#include "serve/sharding.h"
#include "user/user.h"

int main() {
  using namespace isrl;
  Rng rng(99);
  Dataset market = MakeCarDataset(rng);
  Dataset sky = SkylineOf(market);
  std::printf("market: %zu cars, %zu on the skyline\n", market.size(),
              sky.size());

  const size_t kShards = 4;
  const size_t kShoppers = 256;

  EaOptions options;
  options.epsilon = 0.1;
  Ea ea(sky, options);

  // One clone per shard: EA scores through its Q-network, whose batched
  // forward uses per-network scratch, so shards must not share an
  // instance. Clones carry identical weights — identical recommendations.
  std::vector<std::unique_ptr<InteractiveAlgorithm>> clones;
  for (size_t k = 0; k < kShards; ++k) clones.push_back(ea.CloneForEval());

  ShardedOptions sharding;
  sharding.shards = kShards;
  sharding.checkpoint_every_ticks = 8;  // re-snapshot cadence per shard
  ShardedScheduler sharded(sharding);

  std::vector<std::unique_ptr<UserOracle>> owned;
  std::vector<UserOracle*> shoppers;
  for (size_t i = 0; i < kShoppers; ++i) {
    SessionConfig config;
    config.budget.max_rounds = 12;
    config.seed = SplitSeed(99, i);  // seeded: replayable, shard-invariant
    sharded.Add(clones[i % kShards]->StartSession(config),
                clones[i % kShards].get());
    owned.push_back(std::make_unique<LinearUser>(rng.SimplexUniform(sky.dim())));
    shoppers.push_back(owned.back().get());
  }

  const char* prefix = "/tmp/isrl_sharded_demo";
  Status durable = sharded.EnableDurability(prefix);
  if (!durable.ok()) {
    std::fprintf(stderr, "durability: %s\n", durable.ToString().c_str());
    return 1;
  }
  std::printf("durability on: %zu shard files + %s\n", kShards,
              ShardedScheduler::ManifestPath(prefix).c_str());

  // A hostile or stale client gets a Status back, never a crash.
  Status bogus = sharded.TryPostAnswer(9999, Answer::kFirst);
  std::printf("posting to an unknown session: %s\n",
              bogus.ToString().c_str());

  Stopwatch watch;
  Result<std::vector<InteractionResult>> served =
      DriveSharded(sharded, shoppers);
  if (!served.ok()) {
    std::fprintf(stderr, "serving: %s\n", served.status().ToString().c_str());
    return 1;
  }
  double elapsed = watch.ElapsedSeconds();
  double total_rounds = 0.0;
  for (const InteractionResult& r : served.value()) {
    total_rounds += static_cast<double>(r.rounds);
  }
  std::printf("served %zu shoppers on %zu shards in %.2fs (avg %.1f "
              "questions each)\n",
              kShoppers, kShards, elapsed, total_rounds / kShoppers);

  // ---- Restart: a fresh engine recovers every shard from its file. ----
  Result<std::unique_ptr<ShardedScheduler>> recovered =
      ShardedScheduler::Recover(
          sharding, prefix,
          [&](size_t shard, const std::string& name) -> InteractiveAlgorithm* {
            return name == ea.name() ? clones[shard].get() : nullptr;
          });
  if (!recovered.ok()) {
    std::fprintf(stderr, "recover: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  // Replaying the logged answers reproduces every episode: drive the
  // recovered population to completion and compare recommendations.
  Result<std::vector<InteractionResult>> replayed =
      DriveSharded(*recovered.value(), shoppers);
  if (!replayed.ok()) {
    std::fprintf(stderr, "replay: %s\n",
                 replayed.status().ToString().c_str());
    return 1;
  }
  size_t identical = 0;
  for (size_t i = 0; i < kShoppers; ++i) {
    if (replayed.value()[i].best_index == served.value()[i].best_index) {
      ++identical;
    }
  }
  std::printf("recovered population replays %zu/%zu recommendations "
              "identically\n",
              identical, kShoppers);
  return identical == kShoppers ? 0 : 1;
}
