#!/usr/bin/env python3
"""Project lint: style rules clang-tidy cannot express for this codebase.

Rules (see DESIGN.md section 11):
  banned-call   rand()/srand()/atoi/atol/atoll/atof — use mt19937 seeds and
                the checked parsers in common/strings.h instead.
  float-eq      == / != against a floating-point literal. Exact-zero
                skip-work tests are allowed when annotated with a
                `float-eq-ok` comment on the same or the preceding line.
  hot-check     ISRL_CHECK* in designated hot files (innermost numeric
                loops) — use the debug-only ISRL_DCHECK* variants there.
  direct-ask    UserOracle::Ask called from algorithm code under src/core/
                or src/baselines/. Interaction is sans-IO (DESIGN.md
                section 13): algorithms emit questions through their
                InteractionSession; only the blocking driver, the
                scheduler, and the evaluation layer may touch an oracle.
  raw-serialize ad-hoc binary IO (fwrite/fread, reinterpret_cast to a char
                pointer) outside the sanctioned codec layers. Every
                persistent byte flows through core/snapshot (framed,
                versioned, checksummed) or nn/serialize (DESIGN.md
                section 14) so corruption surfaces as a Status, never UB.
  raw-thread    std::thread / std::mutex / std::condition_variable /
                std::lock_guard / std::unique_lock (and kin) outside
                src/common/parallel.*, src/common/mutex.*, and src/serve/.
                Everything else uses the annotated wrappers
                (common/mutex.h: Mutex, MutexLock, CondVar) or ParallelFor
                — raw primitives carry no thread-safety capability, so the
                clang -Wthread-safety lane cannot check code built on them
                (DESIGN.md section 16).
  wall-clock    std::chrono::{system,steady,high_resolution}_clock outside
                src/common/stopwatch.* and src/common/budget.*. A wall-
                clock read in session or algorithm code is a determinism
                hazard: it cannot be captured in a snapshot, so replayed
                or restored runs diverge from the original (DESIGN.md
                sections 10 and 14).
  raw-enumerate EnumerateVertices( outside src/geometry/ and src/audit/.
                Full vertex re-enumeration is the polyhedron's private
                fallback; callers go through Cut(), which maintains
                adjacency incrementally, certifies the update, and records
                audit evidence. A direct call elsewhere silently bypasses
                both the incremental path and its instrumentation
                (DESIGN.md section 17).
  model-ownership
                nn::Network / DqnAgent / main_network() / target_network()
                in serving-side code (src/serve/, the scheduler, the
                session interface). Serving code holds immutable
                nn::ModelSnapshot pins from the ModelRegistry; a raw
                network reference there can be mutated by a concurrent
                retrain, tearing in-flight sessions (DESIGN.md
                section 18). Training-side owners (src/nn/, src/rl/,
                core/ea.*, core/aa.*) and the trainer's publish hook are
                exempt.

Usage: tools/lint.py [paths...]   (defaults to src/)
Exit status is the number of findings (0 == clean).
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Files whose element accessors / pivot loops are the innermost hot path.
# ISRL_CHECK aborts are fine everywhere else; here they must be ISRL_DCHECK.
HOT_FILES = {
    "src/common/vec.h",
    "src/common/matrix.h",
    "src/lp/simplex.cc",
}

BANNED_CALLS = {
    "rand": "use a seeded std::mt19937 (common/ and rl/ already do)",
    "srand": "use a seeded std::mt19937",
    "atoi": "use ParseUint64/ParseDouble from common/strings.h",
    "atol": "use ParseUint64 from common/strings.h",
    "atoll": "use ParseUint64 from common/strings.h",
    "atof": "use ParseDouble from common/strings.h",
}

BANNED_CALL_RE = re.compile(
    r"(?<![A-Za-z0-9_:.])(?:std::)?(" + "|".join(BANNED_CALLS) + r")\s*\("
)

# `x == 1.5`, `0.0 != y`, `a == 1e-9`, ... — comparison where either side is
# a floating-point literal. Conservative: requires a decimal point or
# exponent so integer comparisons (i == 0) never match.
FLOAT_LIT = r"\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+"
FLOAT_EQ_RE = re.compile(
    r"(?:[!=]=\s*(?:" + FLOAT_LIT + r"))|(?:(?:" + FLOAT_LIT + r")\s*[!=]=)"
)

HOT_CHECK_RE = re.compile(r"\bISRL_CHECK(?:_[A-Z]+)?\s*\(")

# Sans-IO discipline: algorithm code never talks to an oracle directly. The
# only places allowed to call `.Ask(` / `->Ask(` under src/core/ and
# src/baselines/ are the IO drivers.
ASK_DRIVER_FILES = {
    "src/core/algorithm.h",   # the blocking Interact() driver
    "src/core/scheduler.h",   # DriveWithUsers
    "src/core/scheduler.cc",
    "src/core/session.cc",    # the evaluation layer
}

ASK_SCOPES = ("src/core/", "src/baselines/")

DIRECT_ASK_RE = re.compile(r"(?:\.|->)\s*Ask\s*\(")

# Durability discipline (DESIGN.md section 14): binary bytes are produced
# and consumed ONLY by the framed snapshot codec and the network
# serializer. fwrite/fread and reinterpret_cast-to-char elsewhere are how
# unversioned, unchecksummed, UB-prone formats creep in.
RAW_SERIALIZE_FILES = {
    "src/core/snapshot.h",
    "src/core/snapshot.cc",
    "src/nn/serialize.h",
    "src/nn/serialize.cc",
}

RAW_SERIALIZE_RE = re.compile(
    r"\b(?:std::)?f(?:write|read)\s*\("
    r"|reinterpret_cast\s*<\s*(?:const\s+)?(?:unsigned\s+)?char\s*\*"
)

# Concurrency discipline (DESIGN.md section 16): locking primitives carry
# thread-safety capability annotations, and the only files allowed to touch
# the raw std primitives are the wrapper layer itself, the thread pool, and
# the serving engine (whose worker std::thread has no annotated wrapper).
RAW_THREAD_ALLOWED_PREFIXES = (
    "src/common/parallel.",
    "src/common/mutex.",
    "src/serve/",
)

RAW_THREAD_RE = re.compile(
    r"\bstd::(?:jthread|thread|timed_mutex|recursive_mutex"
    r"|recursive_timed_mutex|shared_mutex|shared_timed_mutex|mutex"
    r"|condition_variable_any|condition_variable|lock_guard|unique_lock"
    r"|scoped_lock|shared_lock)\b"
)

# Determinism discipline: wall-clock reads are unreplayable inputs. Only the
# stopwatch (measurement) and the budget/deadline layer may consult a clock;
# both are excluded from snapshots by design.
WALL_CLOCK_ALLOWED_PREFIXES = (
    "src/common/stopwatch.",
    "src/common/budget.",
)

WALL_CLOCK_RE = re.compile(
    r"\bstd::chrono::(?:system_clock|steady_clock|high_resolution_clock)\b"
)

# Incremental-geometry discipline (DESIGN.md section 17): vertex sets are
# maintained across cuts; full re-enumeration is Polyhedron's private
# fallback, reached only through Cut()'s certify-or-rebuild logic and the
# audit layer's reference recomputation.
RAW_ENUMERATE_ALLOWED_PREFIXES = (
    "src/geometry/",
    "src/audit/",
)

RAW_ENUMERATE_RE = re.compile(r"\bEnumerateVertices\s*\(")

# Model-ownership discipline (DESIGN.md section 18): serving-side code pins
# immutable ModelSnapshots from the registry; only training-side code (the
# algorithms that own a DqnAgent, src/nn/, src/rl/) touches mutable
# networks. The trainer's RetrainHooks::network is the one sanctioned
# serve-side reference — it hands the freshly trained network to Publish().
MODEL_OWNERSHIP_SCOPES = (
    "src/serve/",
    "src/core/scheduler.",
    "src/core/algorithm.h",
)

MODEL_OWNERSHIP_ALLOWED_FILES = {
    "src/serve/trainer.h",
    "src/serve/trainer.cc",
}

MODEL_OWNERSHIP_RE = re.compile(
    r"\bnn::Network\b|\bDqnAgent\b|\b(?:main|target)_network\s*\("
)

SUPPRESS_TOKEN = "float-eq-ok"

LINE_COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_noise(line: str) -> str:
    """Removes string literals and // comments so rules don't fire on text."""
    line = STRING_RE.sub('""', line)
    return LINE_COMMENT_RE.sub("", line)


def lint_file(path: Path) -> list:
    try:
        rel = path.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        rel = path.as_posix()
    findings = []
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as err:
        return [(rel, 0, "io", f"unreadable: {err}")]

    in_block_comment = False
    prev_raw = ""
    for lineno, raw in enumerate(lines, start=1):
        code = raw
        # Minimal /* */ handling: drop whole lines inside block comments.
        if in_block_comment:
            if "*/" in code:
                code = code.split("*/", 1)[1]
                in_block_comment = False
            else:
                prev_raw = raw
                continue
        if "/*" in code and "*/" not in code:
            code = code.split("/*", 1)[0]
            in_block_comment = True
        code = strip_noise(code)

        m = BANNED_CALL_RE.search(code)
        if m:
            name = m.group(1)
            findings.append(
                (rel, lineno, "banned-call", f"{name}(): {BANNED_CALLS[name]}")
            )

        if FLOAT_EQ_RE.search(code):
            suppressed = SUPPRESS_TOKEN in raw or SUPPRESS_TOKEN in prev_raw
            if not suppressed:
                findings.append(
                    (
                        rel,
                        lineno,
                        "float-eq",
                        "== / != on a float literal; compare against a "
                        "tolerance, or annotate an exact-zero skip-work "
                        f"test with `// {SUPPRESS_TOKEN}: <reason>`",
                    )
                )

        if (
            rel.startswith(ASK_SCOPES)
            and rel not in ASK_DRIVER_FILES
            and DIRECT_ASK_RE.search(code)
        ):
            findings.append(
                (
                    rel,
                    lineno,
                    "direct-ask",
                    "UserOracle::Ask outside an IO driver; emit the "
                    "question through the InteractionSession step API "
                    "(DESIGN.md section 13)",
                )
            )

        if rel not in RAW_SERIALIZE_FILES and RAW_SERIALIZE_RE.search(code):
            findings.append(
                (
                    rel,
                    lineno,
                    "raw-serialize",
                    "ad-hoc binary IO; go through the framed snapshot "
                    "codec (core/snapshot) or nn/serialize "
                    "(DESIGN.md section 14)",
                )
            )

        if (
            not rel.startswith(RAW_THREAD_ALLOWED_PREFIXES)
            and RAW_THREAD_RE.search(code)
        ):
            findings.append(
                (
                    rel,
                    lineno,
                    "raw-thread",
                    "raw std threading primitive; use the annotated "
                    "wrappers in common/mutex.h (Mutex/MutexLock/CondVar) "
                    "or ParallelFor so clang -Wthread-safety can check it "
                    "(DESIGN.md section 16)",
                )
            )

        if (
            not rel.startswith(WALL_CLOCK_ALLOWED_PREFIXES)
            and WALL_CLOCK_RE.search(code)
        ):
            findings.append(
                (
                    rel,
                    lineno,
                    "wall-clock",
                    "wall-clock read outside common/stopwatch + "
                    "common/budget; clock reads in session/algorithm code "
                    "break checkpoint/replay determinism (DESIGN.md "
                    "sections 10 and 14)",
                )
            )

        if (
            not rel.startswith(RAW_ENUMERATE_ALLOWED_PREFIXES)
            and RAW_ENUMERATE_RE.search(code)
        ):
            findings.append(
                (
                    rel,
                    lineno,
                    "raw-enumerate",
                    "direct EnumerateVertices call; go through "
                    "Polyhedron::Cut(), which maintains adjacency "
                    "incrementally and records audit evidence "
                    "(DESIGN.md section 17)",
                )
            )

        if (
            rel.startswith(MODEL_OWNERSHIP_SCOPES)
            and rel not in MODEL_OWNERSHIP_ALLOWED_FILES
            and MODEL_OWNERSHIP_RE.search(code)
        ):
            findings.append(
                (
                    rel,
                    lineno,
                    "model-ownership",
                    "raw network/agent reference in serving-side code; "
                    "pin an immutable nn::ModelSnapshot from the "
                    "ModelRegistry instead (DESIGN.md section 18)",
                )
            )

        if rel in HOT_FILES and HOT_CHECK_RE.search(code):
            findings.append(
                (
                    rel,
                    lineno,
                    "hot-check",
                    "ISRL_CHECK in a designated hot file; use ISRL_DCHECK "
                    "(see DESIGN.md section 11)",
                )
            )

        prev_raw = raw
    return findings


def main(argv: list) -> int:
    targets = [Path(a) for a in argv[1:]] or [REPO_ROOT / "src"]
    files = []
    for t in targets:
        t = t if t.is_absolute() else REPO_ROOT / t
        if t.is_dir():
            files.extend(
                p
                for p in sorted(t.rglob("*"))
                if p.suffix in {".h", ".cc", ".cpp", ".hpp"}
            )
        else:
            files.append(t)

    all_findings = []
    for f in files:
        all_findings.extend(lint_file(f))

    for rel, lineno, rule, msg in all_findings:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if all_findings:
        print(f"{len(all_findings)} finding(s)", file=sys.stderr)
    return min(len(all_findings), 255)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
