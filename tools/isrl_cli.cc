// isrl — command-line front end for the library.
//
// Runs any of the interactive algorithms on built-in or user-supplied data,
// against simulated users, a noisy-user population, or an actual person on
// stdin. Covers the workflows a downstream adopter needs without writing
// C++: benchmarking on their own CSV, training + persisting an agent, and
// driving a live interaction.
//
// Examples:
//   isrl --data=synthetic --d=4 --n=10000 --algo=ea --eps=0.1 --train=200
//   isrl --data=csv --csv=cars.csv --algo=aa --eps=0.1 --users=20
//   isrl --data=car --algo=ea --interactive            # answer on stdin
//   isrl --data=player --algo=aa --save-agent=aa.net   # persist training
//   isrl --data=player --algo=aa --load-agent=aa.net --users=5
#include <cstdio>
#include <memory>
#include <string>

#include "baselines/single_pass.h"
#include "baselines/uh_random.h"
#include "baselines/uh_simplex.h"
#include "baselines/utility_approx.h"
#include "common/flags.h"
#include "common/strings.h"
#include "core/aa.h"
#include "core/ea.h"
#include "core/regret.h"
#include "core/session.h"
#include "data/csv.h"
#include "data/real_like.h"
#include "data/skyline.h"
#include "data/synthetic.h"
#include "user/sampler.h"

namespace isrl {
namespace {

constexpr const char* kUsage = R"(isrl — interactive regret query runner

  --data=synthetic|car|player|csv   dataset source        [synthetic]
  --csv=PATH                        CSV file for --data=csv
  --d=N --n=N                       synthetic dimensions / size [4 / 10000]
  --dist=anti|corr|indep            synthetic correlation  [anti]
  --algo=ea|aa|uh-random|uh-simplex|single-pass|utility-approx   [ea]
  --eps=F                           regret threshold       [0.1]
  --train=N                         RL training episodes   [150]
  --users=N                         simulated users to evaluate [10]
  --noise=F                         user answer flip probability [0]
  --budget=N                        hard cap on questions  [unlimited]
  --seed=N                          master seed            [42]
  --save-agent=PATH / --load-agent=PATH   persist / restore EA-AA Q-network
  --interactive                     you answer the questions on stdin
  --help                            this text
)";

// A human answering on stdin.
class StdinUser : public UserOracle {
 public:
  explicit StdinUser(const Dataset* sky) : sky_(sky) {}

  bool Prefers(const Vec& a, const Vec& b) override {
    ++questions_asked_;
    std::printf("\nQ%zu: which do you prefer?\n", questions_asked_);
    PrintOption("A", a);
    PrintOption("B", b);
    while (true) {
      std::printf("answer [a/b]: ");
      std::fflush(stdout);
      int c = std::getchar();
      while (c == '\n' || c == ' ') c = std::getchar();
      if (c == EOF) return true;  // treat EOF as "A" and let the run finish
      int rest;
      while ((rest = std::getchar()) != '\n' && rest != EOF) {}
      if (c == 'a' || c == 'A') return true;
      if (c == 'b' || c == 'B') return false;
      std::printf("please type 'a' or 'b'\n");
    }
  }

 private:
  void PrintOption(const char* label, const Vec& p) const {
    std::printf("  %s: ", label);
    for (size_t c = 0; c < p.dim(); ++c) {
      const char* name = sky_->attribute_names().empty()
                             ? nullptr
                             : sky_->attribute_names()[c].c_str();
      if (name != nullptr) {
        std::printf("%s=%.2f ", name, p[c]);
      } else {
        std::printf("x%zu=%.2f ", c, p[c]);
      }
    }
    std::printf("\n");
  }

  const Dataset* sky_;
};

Result<Dataset> LoadData(const Flags& flags, Rng& rng) {
  std::string source = flags.GetString("data", "synthetic");
  if (source == "car") return MakeCarDataset(rng);
  if (source == "player") return MakePlayerDataset(rng);
  if (source == "csv") {
    std::string path = flags.GetString("csv");
    if (path.empty()) {
      return Status::InvalidArgument("--data=csv requires --csv=PATH");
    }
    Result<Dataset> raw = ReadCsv(path);
    if (!raw.ok()) return raw.status();
    return raw->Normalized();
  }
  if (source == "synthetic") {
    size_t d = static_cast<size_t>(flags.GetInt("d", 4));
    size_t n = static_cast<size_t>(flags.GetInt("n", 10000));
    std::string dist = flags.GetString("dist", "anti");
    Distribution distribution = Distribution::kAntiCorrelated;
    if (dist == "corr") distribution = Distribution::kCorrelated;
    if (dist == "indep") distribution = Distribution::kIndependent;
    return GenerateSynthetic(n, d, distribution, rng);
  }
  return Status::InvalidArgument("unknown --data source: " + source);
}

int Run(const Flags& flags) {
  if (flags.GetBool("help")) {
    std::printf("%s", kUsage);
    return 0;
  }
  Status known = flags.RequireKnown(
      {"data", "csv", "d", "n", "dist", "algo", "eps", "train", "users",
       "noise", "budget", "seed", "save-agent", "load-agent", "interactive",
       "help"});
  if (!known.ok()) {
    std::fprintf(stderr, "%s\n%s", known.ToString().c_str(), kUsage);
    return 2;
  }

  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const double eps = flags.GetDouble("eps", 0.1);
  const size_t budget = static_cast<size_t>(flags.GetInt("budget", 0));
  Rng rng(seed);

  Result<Dataset> data = LoadData(flags, rng);
  if (!data.ok()) {
    std::fprintf(stderr, "data: %s\n", data.status().ToString().c_str());
    return 1;
  }
  Dataset sky = SkylineOf(*data);
  std::printf("dataset: %zu tuples -> %zu skyline tuples, d=%zu\n",
              data->size(), sky.size(), sky.dim());

  // ---- Build the algorithm. ----
  std::string algo_name = flags.GetString("algo", "ea");
  std::unique_ptr<InteractiveAlgorithm> algo;
  Ea* ea = nullptr;
  Aa* aa = nullptr;
  if (algo_name == "ea") {
    EaOptions opt;
    opt.epsilon = eps;
    opt.seed = seed;
    if (budget > 0) opt.max_rounds = budget;
    auto owned = std::make_unique<Ea>(sky, opt);
    ea = owned.get();
    algo = std::move(owned);
  } else if (algo_name == "aa") {
    AaOptions opt;
    opt.epsilon = eps;
    opt.seed = seed;
    if (budget > 0) opt.max_rounds = budget;
    auto owned = std::make_unique<Aa>(sky, opt);
    aa = owned.get();
    algo = std::move(owned);
  } else if (algo_name == "uh-random" || algo_name == "uh-simplex") {
    UhOptions opt;
    opt.epsilon = eps;
    opt.seed = seed;
    if (budget > 0) opt.max_rounds = budget;
    if (algo_name == "uh-random") {
      algo = std::make_unique<UhRandom>(sky, opt);
    } else {
      algo = std::make_unique<UhSimplex>(sky, opt);
    }
  } else if (algo_name == "single-pass") {
    SinglePassOptions opt;
    opt.epsilon = eps;
    opt.seed = seed;
    if (budget > 0) opt.max_questions = budget;
    algo = std::make_unique<SinglePass>(sky, opt);
  } else if (algo_name == "utility-approx") {
    UtilityApproxOptions opt;
    opt.epsilon = eps;
    opt.seed = seed;
    if (budget > 0) opt.max_rounds = budget;
    algo = std::make_unique<UtilityApprox>(sky, opt);
  } else {
    std::fprintf(stderr, "unknown --algo: %s\n%s", algo_name.c_str(), kUsage);
    return 2;
  }

  // ---- Train / load the RL agents. ----
  std::string load_path = flags.GetString("load-agent");
  if (!load_path.empty()) {
    Status st = ea != nullptr   ? ea->LoadAgent(load_path)
                : aa != nullptr ? aa->LoadAgent(load_path)
                                : Status::InvalidArgument(
                                      "--load-agent needs --algo=ea|aa");
    if (!st.ok()) {
      std::fprintf(stderr, "load-agent: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("loaded agent from %s\n", load_path.c_str());
  } else if (ea != nullptr || aa != nullptr) {
    size_t episodes = static_cast<size_t>(flags.GetInt("train", 150));
    std::printf("training %s on %zu simulated users...\n", algo->name().c_str(),
                episodes);
    auto train_utils = SampleUtilityVectors(episodes, sky.dim(), rng);
    TrainStats ts = ea != nullptr ? ea->Train(train_utils)
                                  : aa->Train(train_utils);
    std::printf("training done: mean rounds %.2f\n", ts.mean_rounds);
  }
  std::string save_path = flags.GetString("save-agent");
  if (!save_path.empty()) {
    Status st = ea != nullptr   ? ea->SaveAgent(save_path)
                : aa != nullptr ? aa->SaveAgent(save_path)
                                : Status::InvalidArgument(
                                      "--save-agent needs --algo=ea|aa");
    if (!st.ok()) {
      std::fprintf(stderr, "save-agent: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("saved agent to %s\n", save_path.c_str());
  }

  // ---- Interactive mode: a human on stdin. ----
  if (flags.GetBool("interactive")) {
    StdinUser user(&sky);
    InteractionResult r = algo->Interact(user);
    std::printf("\nafter %zu questions, your tuple is #%zu: %s\n", r.rounds,
                r.best_index, sky.point(r.best_index).ToString(3).c_str());
    return 0;
  }

  // ---- Simulated evaluation. ----
  size_t users = static_cast<size_t>(flags.GetInt("users", 10));
  double noise = flags.GetDouble("noise", 0.0);
  auto eval = SampleUtilityVectors(users, sky.dim(), rng);
  EvalStats stats =
      noise > 0.0
          ? Evaluate(*algo, sky, eval, eps, MakeNoisyUserFactory(noise))
          : Evaluate(*algo, sky, eval, eps);
  PrintEvalHeader("users");
  PrintEvalRow(Format("%zu", users), stats);
  return 0;
}

}  // namespace
}  // namespace isrl

int main(int argc, char** argv) {
  return isrl::Run(isrl::Flags::Parse(argc, argv));
}
