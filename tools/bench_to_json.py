#!/usr/bin/env python3
"""Distill scalar-vs-batched microbenchmark runs into BENCH_micro.json.

Runs the micro_substrates google-benchmark binary (or reads a previously
captured ``--benchmark_format=json`` dump) and pairs each batched
configuration with its scalar twin — the benchmarks in bench/micro_substrates
that carry a path-mode argument (0 = scalar reference, 1 = batched):

  BM_NnPredictBatch      raw network inference   args: {batch, mode}
  BM_DqnScoreCandidates  greedy action scoring   args: {pool, mode}
  BM_DqnUpdateBatch64    full training update    args: {mode, act, pool}

The output records, per configuration, the scalar and batched CPU time and
their ratio, so the checked-in BENCH_micro.json is a self-contained
before/after table (DESIGN.md section 12 explains the configurations).

Usage:
  tools/bench_to_json.py [--bench build/bench/micro_substrates]
                         [--min-time 0.3] [--from-json raw.json]
                         [--out BENCH_micro.json]

Exit status is non-zero when any expected pair is missing, so CI can use a
short run of this script as a smoke test of the benchmark suite.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Which slash-separated argument of each benchmark selects the execution
# path (0 = scalar, 1 = batched), and how to label the remaining arguments.
ACTIVATIONS = {0: "selu", 1: "relu"}
BENCHMARKS = {
    "BM_NnPredictBatch": {
        "mode_arg": 1,
        "label": lambda rest: f"batch{rest[0]}",
    },
    "BM_DqnScoreCandidates": {
        "mode_arg": 1,
        "label": lambda rest: f"pool{rest[0]}",
    },
    "BM_DqnUpdateBatch64": {
        "mode_arg": 0,
        "label": lambda rest: f"{ACTIVATIONS[rest[0]]}/pool{rest[1]}",
    },
}
FILTER = "|".join(BENCHMARKS)


def run_benchmarks(bench: Path, min_time: float, repetitions: int) -> dict:
    cmd = [
        str(bench),
        f"--benchmark_filter={FILTER}",
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    if repetitions > 1:
        cmd.append(f"--benchmark_repetitions={repetitions}")
    result = subprocess.run(cmd, capture_output=True, text=True, check=True)
    return json.loads(result.stdout)


def distill(raw: dict) -> list:
    """Pairs scalar/batched rows; returns one record per configuration.

    With repetitions the median aggregate is used — single runs on a busy
    host swing by ±15%, medians are stable.
    """
    has_aggregates = any(
        row.get("run_type") == "aggregate" for row in raw.get("benchmarks", [])
    )
    # (benchmark, config-label) -> {"scalar": ns, "batched": ns}
    pairs = {}
    for row in raw.get("benchmarks", []):
        if has_aggregates:
            if row.get("aggregate_name") != "median":
                continue
        elif row.get("run_type") == "aggregate":
            continue
        parts = row["name"].removesuffix("_median").split("/")
        base, args = parts[0], [int(p) for p in parts[1:]]
        spec = BENCHMARKS.get(base)
        if spec is None:
            continue
        mode = args[spec["mode_arg"]]
        rest = [a for i, a in enumerate(args) if i != spec["mode_arg"]]
        key = (base, spec["label"](rest))
        pairs.setdefault(key, {})["batched" if mode == 1 else "scalar"] = row[
            "cpu_time"
        ]

    records, missing = [], []
    for (base, label), times in sorted(pairs.items()):
        if "scalar" not in times or "batched" not in times:
            missing.append(f"{base}[{label}]")
            continue
        records.append(
            {
                "benchmark": base,
                "config": label,
                "scalar_cpu_ns": round(times["scalar"], 1),
                "batched_cpu_ns": round(times["batched"], 1),
                "speedup": round(times["scalar"] / times["batched"], 2),
            }
        )
    if missing:
        raise SystemExit(f"unpaired benchmark configurations: {missing}")
    if not records:
        raise SystemExit("no scalar-vs-batched benchmark rows found")
    return records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench",
        type=Path,
        default=REPO_ROOT / "build" / "bench" / "micro_substrates",
        help="path to the micro_substrates binary",
    )
    parser.add_argument(
        "--min-time",
        type=float,
        default=0.3,
        help="--benchmark_min_time per configuration, in seconds",
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=1,
        help="benchmark repetitions; > 1 records the median of each "
        "configuration instead of a single sample",
    )
    parser.add_argument(
        "--from-json",
        type=Path,
        default=None,
        help="parse an existing --benchmark_format=json dump instead of "
        "running the binary",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_micro.json",
        help="output file",
    )
    args = parser.parse_args()

    if args.from_json is not None:
        raw = json.loads(args.from_json.read_text())
    else:
        raw = run_benchmarks(args.bench, args.min_time, args.repetitions)

    context = raw.get("context", {})
    out = {
        "generated_by": "tools/bench_to_json.py",
        "date": context.get("date", "unknown"),
        "host": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "library_build_type": context.get("library_build_type"),
        },
        "statistic": (
            f"median of {args.repetitions} repetitions"
            if args.from_json is None and args.repetitions > 1
            else "as captured"
        ),
        "note": "speedup = scalar_cpu_ns / batched_cpu_ns; both paths "
        "produce bit-identical results (DESIGN.md section 12)",
        "results": distill(raw),
    }
    args.out.write_text(json.dumps(out, indent=2) + "\n")
    for r in out["results"]:
        print(
            f"{r['benchmark']:<24} {r['config']:<12} "
            f"scalar {r['scalar_cpu_ns'] / 1e3:>9.1f} us   "
            f"batched {r['batched_cpu_ns'] / 1e3:>9.1f} us   "
            f"{r['speedup']:.2f}x"
        )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
