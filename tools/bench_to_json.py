#!/usr/bin/env python3
"""Distill paired A/B microbenchmark runs into a checked-in BENCH_*.json.

Runs the micro_substrates google-benchmark binary (or reads a previously
captured ``--benchmark_format=json`` dump) and pairs each variant
configuration with its baseline twin. Two suites:

--suite micro (default, scalar vs batched; DESIGN.md section 12):
  BM_NnPredictBatch      raw network inference   args: {batch, mode}
  BM_DqnScoreCandidates  greedy action scoring   args: {pool, mode}
  BM_DqnUpdateBatch64    full training update    args: {mode, act, pool}

--suite scheduler (sequential Interact() vs SessionScheduler with
cross-session coalesced Q-inference; DESIGN.md section 13):
  BM_SessionThroughputEa  N full EA episodes   args: {sessions, mode}
  BM_SessionThroughputAa  N full AA episodes   args: {sessions, mode}
plus the shard-count axis (ShardedScheduler, DESIGN.md section 15):
  BM_ShardedThroughputEa  N full EA episodes   args: {sessions, shards}
  BM_ShardedThroughputAa  N full AA episodes   args: {sessions, shards}
Shard-axis benchmarks are paired against their own shards == 1 row (the
same engine with one worker thread) and compared on wall-clock time
(UseRealTime), since thread-level speedup never shows in process CPU
time; both wall and CPU times are recorded so a single-core host, where
shards interleave instead of parallelize, is visible in the numbers.

--suite checkpoint (population snapshot save vs restore; DESIGN.md
section 14): BM_Checkpoint{Ea,Aa,UhRandom,UhSimplex,SinglePass,
UtilityApprox}, args: {sessions, mode} where mode 0 = CheckpointAll()
and mode 1 = RestoreAll(). Each record carries the snapshot_bytes
counter, so the checked-in file doubles as a size-regression table.

--suite registry (versioned model registry + trace harvesting; DESIGN.md
section 18) runs build/bench/registry_substrates:
  BM_RegistrySwap   N full EA episodes   args: {sessions, mode}
                    mode 0 = one pinned version, 1 = publish per admission
  BM_TraceHarvest   N full EA episodes   args: {sessions, mode}
                    mode 0 = no harvest sink, 1 = TraceStore harvesting

--suite geometry (incremental convex geometry and warm-started LP;
DESIGN.md section 17) runs build/bench/geo_substrates instead:
  BM_GeoCutSequence   12-cut session on UnitSimplex(d)  args: {d, mode}
                      mode 0 = full re-enumeration per cut, 1 = adjacency
  BM_GeoAaGeometry    AA rectangle geometry             args: {d, mode}
                      mode 0 = independent LPs, 1 = shared-phase-1 family
  BM_GeoExtremeSweep  extreme-point sweep over n points args: {n, mode}
                      mode 0 = cold LP per query, 1 = shared model + warm

The output records, per configuration, both CPU times and their ratio, so
each checked-in BENCH_*.json is a self-contained before/after table.

Checked-in BENCH_*.json files must come from a Release build
(see CONTRIBUTING.md "Benchmarks"). The script records a build_type_ok
flag and warns loudly when the code under test was compiled without
NDEBUG (isrl_build_type custom context; falls back to the benchmark
library's own library_build_type when absent).

Usage:
  tools/bench_to_json.py [--suite micro|scheduler|checkpoint|geometry]
                         [--bench build/bench/micro_substrates]
                         [--min-time 0.3] [--from-json raw.json]
                         [--out BENCH_<suite>.json]

Exit status is non-zero when any expected pair is missing, so CI can use a
short run of this script as a smoke test of the benchmark suite.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Which slash-separated argument of each benchmark selects the execution
# path (0 = baseline, 1 = variant), and how to label the remaining arguments.
ACTIVATIONS = {0: "selu", 1: "relu"}
SUITES = {
    "micro": {
        "benchmarks": {
            "BM_NnPredictBatch": {
                "mode_arg": 1,
                "label": lambda rest: f"batch{rest[0]}",
            },
            "BM_DqnScoreCandidates": {
                "mode_arg": 1,
                "label": lambda rest: f"pool{rest[0]}",
            },
            "BM_DqnUpdateBatch64": {
                "mode_arg": 0,
                "label": lambda rest: f"{ACTIVATIONS[rest[0]]}/pool{rest[1]}",
            },
        },
        # Field names keep their historical suite-specific spelling so the
        # checked-in BENCH_micro.json stays diff-stable.
        "baseline_field": "scalar_cpu_ns",
        "variant_field": "batched_cpu_ns",
        "note": "speedup = scalar_cpu_ns / batched_cpu_ns; both paths "
        "produce bit-identical results (DESIGN.md section 12)",
    },
    "scheduler": {
        "benchmarks": {
            "BM_SessionThroughputEa": {
                "mode_arg": 1,
                "label": lambda rest: f"sessions{rest[0]}",
            },
            "BM_SessionThroughputAa": {
                "mode_arg": 1,
                "label": lambda rest: f"sessions{rest[0]}",
            },
            # Shard-count axis: the argument is a worker-thread count, not
            # a binary mode. Every shards > 1 row pairs against the
            # shards == 1 row of the same session count, on wall-clock.
            "BM_ShardedThroughputEa": {
                "axis_arg": 1,
                "label": lambda rest: f"sessions{rest[0]}",
            },
            "BM_ShardedThroughputAa": {
                "axis_arg": 1,
                "label": lambda rest: f"sessions{rest[0]}",
            },
        },
        "baseline_field": "sequential_cpu_ns",
        "variant_field": "scheduler_cpu_ns",
        "note": "speedup = sequential_cpu_ns / scheduler_cpu_ns for N "
        "complete episodes; the scheduler interleaves all N sessions and "
        "coalesces their Q-inference into one PredictBatch per tick, with "
        "bit-identical per-session results (DESIGN.md section 13). "
        "BM_Sharded* rows instead report the shard-count axis: speedup = "
        "one_shard_wall_ns / sharded_wall_ns for the same N episodes on a "
        "ShardedScheduler with S worker-thread shards vs one (DESIGN.md "
        "section 15); the cpu fields carry total process CPU time, so "
        "wall ~= cpu means the host serialized the shards onto one core "
        "and the wall-clock ratio is the honest parallel speedup",
    },
    "checkpoint": {
        "benchmarks": {
            name: {
                "mode_arg": 1,
                "label": lambda rest: f"sessions{rest[0]}",
            }
            for name in (
                "BM_CheckpointEa",
                "BM_CheckpointAa",
                "BM_CheckpointUhRandom",
                "BM_CheckpointUhSimplex",
                "BM_CheckpointSinglePass",
                "BM_CheckpointUtilityApprox",
            )
        },
        "baseline_field": "save_cpu_ns",
        "variant_field": "restore_cpu_ns",
        "counters": ["snapshot_bytes"],
        "note": "speedup = save_cpu_ns / restore_cpu_ns for one scheduler "
        "population parked mid-conversation; save is CheckpointAll() "
        "(serialize every session into one framed, CRC-checked snapshot), "
        "restore is RestoreAll() (verify and rebuild every session); "
        "snapshot_bytes is the whole-population snapshot size "
        "(DESIGN.md section 14)",
    },
    "registry": {
        "binary": "registry_substrates",
        "benchmarks": {
            "BM_RegistrySwap": {
                "mode_arg": 1,
                "label": lambda rest: f"sessions{rest[0]}",
            },
            "BM_TraceHarvest": {
                "mode_arg": 1,
                "label": lambda rest: f"sessions{rest[0]}",
            },
        },
        "baseline_field": "plain_cpu_ns",
        "variant_field": "registry_cpu_ns",
        "note": "speedup = plain_cpu_ns / registry_cpu_ns for N complete "
        "EA episodes; both modes run identical seeded episodes. "
        "BM_TraceHarvest's variant distills every finished session into a "
        "TraceStore record through the scheduler's harvest sink — ~1.0 is "
        "the claim there. BM_RegistrySwap's variant publishes a fresh "
        "registry version before EVERY session admission (DESIGN.md "
        "section 18): each publish copies and fingerprints the network, "
        "and per-version snapshots fragment cross-session score "
        "coalescing, so < 1.0 prices the worst-case swap cadence — "
        "serving under a pinned snapshot (mode 0) is the steady state",
    },
    "geometry": {
        "binary": "geo_substrates",
        "benchmarks": {
            "BM_GeoCutSequence": {
                "mode_arg": 1,
                "label": lambda rest: f"d{rest[0]}",
            },
            "BM_GeoAaGeometry": {
                "mode_arg": 1,
                "label": lambda rest: f"d{rest[0]}",
            },
            "BM_GeoExtremeSweep": {
                "mode_arg": 1,
                "label": lambda rest: f"n{rest[0]}",
            },
        },
        "baseline_field": "rebuild_cpu_ns",
        "variant_field": "incremental_cpu_ns",
        "note": "speedup = rebuild_cpu_ns / incremental_cpu_ns; the "
        "baseline is the seed path (full vertex re-enumeration per cut / "
        "independent rectangle LPs / a cold LP per extreme-point query), "
        "the variant maintains state across solves (vertex-facet adjacency "
        "/ shared simplex phase 1 / warm-started bases). Both paths "
        "produce identical results: bit-identical vertices and AA "
        "geometry, identical extreme-point verdicts (DESIGN.md "
        "section 17)",
    },
}


def run_benchmarks(
    bench: Path, suite: dict, min_time: float, repetitions: int
) -> dict:
    bench_filter = "|".join(f"{name}/" for name in suite["benchmarks"])
    cmd = [
        str(bench),
        f"--benchmark_filter={bench_filter}",
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    if repetitions > 1:
        cmd.append(f"--benchmark_repetitions={repetitions}")
    result = subprocess.run(cmd, capture_output=True, text=True, check=True)
    return json.loads(result.stdout)


def to_ns(row: dict, field: str = "cpu_time") -> float:
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    return row[field] * scale.get(row.get("time_unit", "ns"), 1.0)


def distill(raw: dict, suite: dict) -> list:
    """Pairs baseline/variant rows; returns one record per configuration.

    With repetitions the median aggregate is used — single runs on a busy
    host swing by ±15%, medians are stable.
    """
    has_aggregates = any(
        row.get("run_type") == "aggregate" for row in raw.get("benchmarks", [])
    )
    # mode benchmarks: (benchmark, config-label) -> {"baseline": ns, ...}
    pairs = {}
    # axis benchmarks: (benchmark, config-label) -> {axis-value: row-times}
    axes = {}
    for row in raw.get("benchmarks", []):
        if has_aggregates:
            if row.get("aggregate_name") != "median":
                continue
        elif row.get("run_type") == "aggregate":
            continue
        # UseRealTime/MeasureProcessCPUTime append non-numeric name parts
        # ("/process_time/real_time"); only the numeric parts are args.
        parts = row["name"].removesuffix("_median").split("/")
        base = parts[0]
        args = [int(p) for p in parts[1:] if p.lstrip("-").isdigit()]
        spec = suite["benchmarks"].get(base)
        if spec is None:
            continue
        if "axis_arg" in spec:
            axis = args[spec["axis_arg"]]
            rest = [a for i, a in enumerate(args) if i != spec["axis_arg"]]
            key = (base, spec["label"](rest))
            # Wall-clock carries the thread-scaling story; CPU time rides
            # along so single-core serialization is visible.
            axes.setdefault(key, {})[axis] = {
                "wall": to_ns(row, "real_time"),
                "cpu": to_ns(row, "cpu_time"),
            }
            continue
        mode = args[spec["mode_arg"]]
        rest = [a for i, a in enumerate(args) if i != spec["mode_arg"]]
        key = (base, spec["label"](rest))
        entry = pairs.setdefault(key, {})
        entry["variant" if mode == 1 else "baseline"] = to_ns(row)
        for counter in suite.get("counters", []):
            if counter in row:
                entry.setdefault("counters", {})[counter] = row[counter]

    records, missing = [], []
    for (base, label), times in sorted(pairs.items()):
        if "baseline" not in times or "variant" not in times:
            missing.append(f"{base}[{label}]")
            continue
        record = {
            "benchmark": base,
            "config": label,
            suite["baseline_field"]: round(times["baseline"], 1),
            suite["variant_field"]: round(times["variant"], 1),
            "speedup": round(times["baseline"] / times["variant"], 2),
        }
        for counter, value in times.get("counters", {}).items():
            record[counter] = round(value)
        records.append(record)
    for (base, label), by_axis in sorted(axes.items()):
        if 1 not in by_axis:
            missing.append(f"{base}[{label}] (no shards=1 baseline)")
            continue
        one = by_axis[1]
        for axis, timed in sorted(by_axis.items()):
            if axis == 1:
                continue
            records.append({
                "benchmark": base,
                "config": f"{label}/shards{axis}",
                "one_shard_wall_ns": round(one["wall"], 1),
                "sharded_wall_ns": round(timed["wall"], 1),
                "speedup": round(one["wall"] / timed["wall"], 2),
                "one_shard_cpu_ns": round(one["cpu"], 1),
                "sharded_cpu_ns": round(timed["cpu"], 1),
            })
        if len(by_axis) == 1:
            missing.append(f"{base}[{label}] (no shards>1 rows)")
    if missing:
        raise SystemExit(f"unpaired benchmark configurations: {missing}")
    if not records:
        raise SystemExit("no paired benchmark rows found")
    return records


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--suite",
        choices=sorted(SUITES),
        default="micro",
        help="which paired benchmark family to distill",
    )
    parser.add_argument(
        "--bench",
        type=Path,
        default=None,
        help="path to the benchmark binary (default: the suite's binary "
        "under build/bench/)",
    )
    parser.add_argument(
        "--min-time",
        type=float,
        default=0.3,
        help="--benchmark_min_time per configuration, in seconds",
    )
    parser.add_argument(
        "--repetitions",
        type=int,
        default=1,
        help="benchmark repetitions; > 1 records the median of each "
        "configuration instead of a single sample",
    )
    parser.add_argument(
        "--from-json",
        type=Path,
        default=None,
        help="parse an existing --benchmark_format=json dump instead of "
        "running the binary",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="output file (default BENCH_<suite>.json at the repo root)",
    )
    args = parser.parse_args()
    suite = SUITES[args.suite]
    if args.out is None:
        args.out = REPO_ROOT / f"BENCH_{args.suite}.json"
    if args.bench is None:
        binary = suite.get("binary", "micro_substrates")
        args.bench = REPO_ROOT / "build" / "bench" / binary

    if args.from_json is not None:
        raw = json.loads(args.from_json.read_text())
    else:
        raw = run_benchmarks(args.bench, suite, args.min_time,
                             args.repetitions)

    context = raw.get("context", {})
    # Build-type hygiene: a debug-compiled binary produces numbers that
    # look plausible but are meaningless for the checked-in tables.
    # isrl_build_type is custom context emitted by the bench binaries
    # themselves (NDEBUG at their compile time); library_build_type is the
    # benchmark library's own report, which on distro-packaged
    # libbenchmark reads "debug" regardless of how isrl was built.
    build_type = context.get("isrl_build_type") or context.get(
        "library_build_type"
    )
    build_type_ok = build_type == "release"
    if not build_type_ok:
        print(
            "*" * 72
            + f"\n*** WARNING: benchmark binary build type is "
            f"'{build_type}', not 'release'.\n"
            "*** Timings below are NOT comparable to checked-in "
            "BENCH_*.json tables.\n"
            "*** Rebuild with -DCMAKE_BUILD_TYPE=Release before "
            "regenerating them\n"
            "*** (see CONTRIBUTING.md 'Benchmarks').\n" + "*" * 72,
            file=sys.stderr,
        )
    out = {
        "generated_by": "tools/bench_to_json.py",
        "date": context.get("date", "unknown"),
        "host": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "library_build_type": context.get("library_build_type"),
            "isrl_build_type": context.get("isrl_build_type"),
        },
        "build_type_ok": build_type_ok,
        "statistic": (
            f"median of {args.repetitions} repetitions"
            if args.from_json is None and args.repetitions > 1
            else "as captured"
        ),
        "note": suite["note"],
        "results": distill(raw, suite),
    }
    args.out.write_text(json.dumps(out, indent=2) + "\n")
    base_name = suite["baseline_field"].removesuffix("_cpu_ns")
    variant_name = suite["variant_field"].removesuffix("_cpu_ns")
    for r in out["results"]:
        if "one_shard_wall_ns" in r:
            print(
                f"{r['benchmark']:<24} {r['config']:<20} "
                f"one_shard {r['one_shard_wall_ns'] / 1e3:>11.1f} us   "
                f"sharded {r['sharded_wall_ns'] / 1e3:>11.1f} us   "
                f"{r['speedup']:.2f}x (wall)"
            )
            continue
        print(
            f"{r['benchmark']:<24} {r['config']:<12} "
            f"{base_name} {r[suite['baseline_field']] / 1e3:>11.1f} us   "
            f"{variant_name} {r[suite['variant_field']] / 1e3:>11.1f} us   "
            f"{r['speedup']:.2f}x"
        )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
